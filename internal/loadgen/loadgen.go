package loadgen

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridauth"
	"gridauth/internal/core"
	"gridauth/internal/gram"
	"gridauth/internal/gridftp"
	"gridauth/internal/gridmap"
	"gridauth/internal/gsi"
	"gridauth/internal/mds"
	"gridauth/internal/obs"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
	"gridauth/internal/workload"
)

const (
	// scrapeInterval paces the /metrics sampler that derives peak
	// decisions/sec.
	scrapeInterval = 200 * time.Millisecond
	// maxOpenClients bounds pooled gram+gridftp clients (and so open
	// sockets): beyond it the oldest idle identity's clients are closed.
	// Its session state is dropped with them, so a re-touched identity
	// pays a full handshake again — the same cost an LRU'd session
	// cache imposes on a real gatekeeper's long-tail users.
	maxOpenClients = 1024
)

var loadPayload = []byte("p13-load-object")

// RunResult is one measured load run: a (point, repeat) cell of the
// experiment grid.
type RunResult struct {
	Point    string `json:"point"`
	Repeat   int    `json:"repeat"`
	Seed     int64  `json:"seed"`
	Requests int    `json:"requests"`
	OpenLoop bool   `json:"openLoop,omitempty"`

	// Client-side decision counts. Errors are transport or setup
	// failures that never reached (or never returned from) the decision
	// point and so are excluded from the cross-check.
	Permits uint64 `json:"permits"`
	Denies  uint64 `json:"denies"`
	Errors  uint64 `json:"errors"`

	// ServerDecisions is the sum of the four authz_decisions_*_total
	// counters scraped from the resource's /metrics endpoint after the
	// run; CrossCheckPct is its relative disagreement with the
	// client-side Permits+Denies, in percent.
	ServerDecisions uint64  `json:"serverDecisions"`
	CrossCheckPct   float64 `json:"crossCheckPct"`

	DurationSec         float64 `json:"durationSec"`
	Throughput          float64 `json:"throughput"` // completed ops/sec over the run
	PeakDecisionsPerSec float64 `json:"peakDecisionsPerSec"`

	// Latency percentiles in microseconds, computed from the exact
	// per-op samples (closed loop: service time; open loop: measured
	// from the scheduled arrival, so queueing delay — coordinated
	// omission — is included).
	P50Micros  float64 `json:"p50Micros"`
	P99Micros  float64 `json:"p99Micros"`
	P999Micros float64 `json:"p999Micros"`

	HandshakesFull    uint64 `json:"handshakesFull"`
	HandshakesResumed uint64 `json:"handshakesResumed"`

	// Identities is how many of the point's synthetic identities the
	// traffic actually materialized (fabrication is lazy).
	Identities int `json:"identities"`
}

// identity is one materialized synthetic user: a CA-issued user
// credential's 12h proxy, deterministic in (seed, index).
type identity struct {
	dn    gsi.DN
	proxy *gsi.Credential
}

// entry is the per-identity client pool slot. Its mutex is held for the
// full duration of an op, so ops on one identity serialize (concurrency
// comes from the identity population) and connection-mode churn can
// never race an in-flight request on the same clients.
type entry struct {
	mu      sync.Mutex
	gram    *gram.Client
	ftp     *gridftp.Client
	contact string
}

type harness struct {
	p    *Point
	seed int64

	fab     *gridauth.Fabric
	res     *gridauth.Resource
	metrics *obs.Metrics
	gmap    *gridmap.Map

	ftpSrv    *gridftp.Server
	ftpAddr   string
	ftpDone   chan struct{}
	httpSrv   *http.Server
	scrapeURL string

	query func(*core.Request, mds.Query) ([]mds.Record, core.Decision)

	idMu sync.Mutex
	ids  map[int]*identity

	poolMu sync.Mutex
	pool   map[int]*entry
	order  []int // pooled-client open order, for eviction

	permits atomic.Uint64
	denies  atomic.Uint64
	errs    atomic.Uint64
}

func newHarness(p *Point, seed int64) (*harness, error) {
	pol, err := BuildPolicy(p.Policy.Shape, p.Policy.Rules)
	if err != nil {
		return nil, err
	}
	st := policy.NewStore(pol)
	fab, err := gridauth.NewFabric("/O=Grid/CN=Load CA")
	if err != nil {
		return nil, err
	}
	h := &harness{
		p:       p,
		seed:    seed,
		fab:     fab,
		metrics: obs.NewMetrics(),
		gmap:    gridmap.New(),
		ids:     make(map[int]*identity),
		pool:    make(map[int]*entry),
	}
	// The bootstrap grid-mapfile entry exists to create the shared
	// local account; synthetic identities are added to the shared map
	// lazily as traffic materializes them.
	bootstrap := gsi.DN(workload.P12OrgPrefix + "/CN=load-bootstrap")
	h.res, err = fab.StartResource(gridauth.ResourceConfig{
		Name:          "load.grid.test",
		CPUs:          64,
		Mode:          gridauth.ModeCallout,
		GridMap:       map[gsi.DN][]string{bootstrap: {LoadAccount}},
		SharedGridMap: h.gmap,
		PolicyStores:  []*policy.Store{st},
		Metrics:       h.metrics,
		ConnWorkers:   p.Workers,
	})
	if err != nil {
		return nil, err
	}
	// The same store answers for the data and discovery services, so
	// every op kind exercises the one policy under test.
	pdp := &core.StorePDP{Store: st}
	h.res.Registry.Bind(mds.CalloutMDS, pdp)
	h.res.Registry.Bind(gridftp.CalloutGridFTP, pdp)

	ftpCred, err := fab.IssueService("/O=Grid/CN=gridftp/load.grid.test")
	if err != nil {
		h.Close()
		return nil, err
	}
	h.ftpSrv, err = gridftp.NewServer(ftpCred, fab.Trust, h.res.Registry, gridftp.NewStore())
	if err != nil {
		h.Close()
		return nil, err
	}
	ftpL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.Close()
		return nil, err
	}
	h.ftpAddr = ftpL.Addr().String()
	h.ftpDone = make(chan struct{})
	go func() {
		defer close(h.ftpDone)
		_ = h.ftpSrv.Serve(ftpL)
	}()

	dir := mds.NewDirectory()
	_ = dir.Register(mds.Record{Name: "load.grid.test", Contact: h.res.Addr, TotalCPUs: 64, FreeCPUs: 64})
	h.query = mds.QueryPDP(h.res.Registry, dir, nil)

	// The harness scrapes its own /metrics endpoint over HTTP — the
	// same path an operator's collector takes — rather than reading the
	// counters in-process, so the cross-check covers the exporter too.
	httpL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.Close()
		return nil, err
	}
	h.httpSrv = &http.Server{Handler: obs.NewServeMux(h.metrics, nil)}
	h.scrapeURL = "http://" + httpL.Addr().String() + "/metrics"
	go func() { _ = h.httpSrv.Serve(httpL) }()
	return h, nil
}

func (h *harness) Close() {
	h.poolMu.Lock()
	for _, e := range h.pool {
		if e.gram != nil {
			e.gram.Close()
		}
		if e.ftp != nil {
			e.ftp.Close()
		}
	}
	h.poolMu.Unlock()
	if h.httpSrv != nil {
		_ = h.httpSrv.Close()
	}
	if h.ftpSrv != nil {
		h.ftpSrv.Close()
		<-h.ftpDone
	}
	if h.res != nil {
		h.res.Close()
	}
}

func (h *harness) identity(i int) (*identity, error) {
	h.idMu.Lock()
	defer h.idMu.Unlock()
	if id, ok := h.ids[i]; ok {
		return id, nil
	}
	dn := workload.P12Subject(h.p.Policy.Shape, i, h.p.Policy.Rules)
	user, err := h.fab.CA.IssueWithKey(dn, gsi.KindUser, gsi.KeyFromSeed(h.seed, "user", strconv.Itoa(i)))
	if err != nil {
		return nil, fmt.Errorf("loadgen: fabricate user %d: %w", i, err)
	}
	proxy, err := gsi.DelegateWithKey(user, 12*time.Hour, false, gsi.KeyFromSeed(h.seed, "proxy", strconv.Itoa(i)))
	if err != nil {
		return nil, fmt.Errorf("loadgen: fabricate proxy %d: %w", i, err)
	}
	h.gmap.Add(dn, LoadAccount)
	id := &identity{dn: dn, proxy: proxy}
	h.ids[i] = id
	return id, nil
}

func (h *harness) entry(i int) *entry {
	h.poolMu.Lock()
	defer h.poolMu.Unlock()
	e, ok := h.pool[i]
	if !ok {
		e = &entry{}
		h.pool[i] = e
	}
	return e
}

// noteOpen records that identity i now holds pooled clients and evicts
// the oldest idle identity's clients when the pool exceeds
// maxOpenClients. Called with i's entry lock held, so eviction only
// TryLocks other entries — a busy victim is skipped, never waited on.
func (h *harness) noteOpen(i int) {
	h.poolMu.Lock()
	defer h.poolMu.Unlock()
	h.order = append(h.order, i)
	for len(h.order) > maxOpenClients {
		victim := h.order[0]
		h.order = h.order[1:]
		if victim == i {
			h.order = append(h.order, victim)
			return
		}
		ve := h.pool[victim]
		if ve == nil {
			continue
		}
		if !ve.mu.TryLock() {
			h.order = append(h.order, victim)
			return
		}
		if ve.gram != nil {
			ve.gram.Close()
			ve.gram = nil
		}
		if ve.ftp != nil {
			ve.ftp.Close()
			ve.ftp = nil
		}
		ve.mu.Unlock()
	}
}

// gramClient resolves the op's GRAM client per its connection mode. The
// second result reports a throwaway client the caller must Close.
func (h *harness) gramClient(e *entry, i int, id *identity, conn string) (*gram.Client, bool) {
	if conn == ConnFull {
		return gram.NewClient(h.res.Addr, id.proxy, h.fab.Trust), true
	}
	if e.gram == nil {
		e.gram = gram.NewClient(h.res.Addr, id.proxy, h.fab.Trust)
		h.noteOpen(i)
	} else if conn == ConnResume {
		// Drop the connection but keep the client: its session cache
		// survives Close, so the op's lazy reconnect resumes by ticket.
		e.gram.Close()
	}
	return e.gram, false
}

func (h *harness) ftpClient(e *entry, i int, id *identity, conn string) (*gridftp.Client, bool) {
	// The gridftp protocol has no session resumption, so ConnResume
	// degenerates to ConnFull here: a fresh connection, full handshake.
	if conn == ConnFull || conn == ConnResume {
		return gridftp.NewClient(h.ftpAddr, id.proxy, h.fab.Trust), true
	}
	if e.ftp == nil {
		e.ftp = gridftp.NewClient(h.ftpAddr, id.proxy, h.fab.Trust)
		h.noteOpen(i)
	}
	return e.ftp, false
}

// do executes one op against the running services and counts its
// outcome. Every op that completes yields exactly one authorization
// decision server-side — that invariant is what makes the /metrics
// cross-check exact.
func (h *harness) do(op Op) {
	id, err := h.identity(op.Identity)
	if err != nil {
		h.errs.Add(1)
		return
	}
	e := h.entry(op.Identity)
	e.mu.Lock()
	defer e.mu.Unlock()

	switch op.Kind {
	case OpMDS:
		req := &core.Request{
			Subject: id.dn,
			Action:  policy.ActionInformation,
			Spec:    rsl.NewSpec().Set("querytype", "discovery"),
		}
		_, d := h.query(req, mds.Query{})
		switch d.Effect {
		case core.Permit:
			h.permits.Add(1)
		case core.Deny:
			h.denies.Add(1)
		default:
			h.errs.Add(1)
		}
		return
	case OpGridFTP:
		c, temp := h.ftpClient(e, op.Identity, id, op.Conn)
		err = c.Put(LoadDir+"/u"+strconv.Itoa(op.Identity), loadPayload)
		if temp {
			c.Close()
		}
		h.count(err, errors.Is(err, gridftp.ErrDenied))
		return
	default: // OpStartup, OpManagement
		c, temp := h.gramClient(e, op.Identity, id, op.Conn)
		kind := op.Kind
		if kind == OpManagement && e.contact == "" {
			// Nothing to manage yet: the op degenerates to a startup,
			// which still costs exactly one decision.
			kind = OpStartup
		}
		if kind == OpStartup {
			contact, serr := c.Submit(LoadRSL, LoadAccount)
			if serr == nil {
				e.contact = contact
			}
			err = serr
		} else {
			_, err = c.Status(e.contact)
		}
		if temp {
			c.Close()
		}
		h.count(err, gram.IsAuthorizationDenied(err))
	}
}

func (h *harness) count(err error, denied bool) {
	switch {
	case err == nil:
		h.permits.Add(1)
	case denied:
		h.denies.Add(1)
	default:
		h.errs.Add(1)
	}
}

// scrape fetches and parses the /metrics endpoint.
func (h *harness) scrape() (map[string]float64, error) {
	resp, err := http.Get(h.scrapeURL)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out, nil
}

func decisionsTotal(m map[string]float64) float64 {
	return m["authz_decisions_permit_total"] +
		m["authz_decisions_deny_total"] +
		m["authz_decisions_error_total"] +
		m["authz_decisions_not_applicable_total"]
}

// RunPoint executes one load run: point p with the given seed. The
// full service stack (gatekeeper, gridftp, mds, metrics exporter) is
// built fresh, the deterministic op stream is executed in the point's
// loop mode, and the result carries exact latency percentiles plus the
// /metrics cross-check.
func RunPoint(p Point, seed int64) (*RunResult, error) {
	p.Normalize()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ops := Ops(&p, seed)
	h, err := newHarness(&p, seed)
	if err != nil {
		return nil, err
	}
	defer h.Close()

	// Peak decisions/sec sampler: scrape deltas at scrapeInterval.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	var peak float64
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		tick := time.NewTicker(scrapeInterval)
		defer tick.Stop()
		var prev float64
		prevAt := time.Now()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				m, err := h.scrape()
				if err != nil {
					continue
				}
				now := time.Now()
				cur := decisionsTotal(m)
				if dt := now.Sub(prevAt).Seconds(); dt > 0 {
					if rate := (cur - prev) / dt; rate > peak {
						peak = rate
					}
				}
				prev, prevAt = cur, now
			}
		}
	}()

	workers := p.Workers
	lat := make([][]int64, workers)
	var wg sync.WaitGroup
	start := time.Now()
	if p.Rate > 0 {
		// Open loop: a dispatcher releases ops at the arrival rate;
		// latency runs from the op's scheduled arrival, so a backlog
		// shows up as latency instead of silently slowing arrivals.
		type timedOp struct {
			op    Op
			sched time.Time
		}
		ch := make(chan timedOp, len(ops))
		interval := time.Duration(float64(time.Second) / p.Rate)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(ch)
			t0 := time.Now()
			for i, op := range ops {
				sched := t0.Add(time.Duration(i) * interval)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				ch <- timedOp{op, sched}
			}
		}()
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for to := range ch {
					h.do(to.op)
					lat[w] = append(lat[w], time.Since(to.sched).Nanoseconds())
				}
			}(w)
		}
	} else {
		// Closed loop: workers pull the next op as soon as they finish
		// the previous one.
		var next atomic.Int64
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(ops) {
						return
					}
					t0 := time.Now()
					h.do(ops[i])
					lat[w] = append(lat[w], time.Since(t0).Nanoseconds())
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	scrapeWG.Wait()

	final, err := h.scrape()
	if err != nil {
		return nil, fmt.Errorf("loadgen: final metrics scrape: %w", err)
	}

	var all []int64
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	permits, denies, errs := h.permits.Load(), h.denies.Load(), h.errs.Load()
	clientDecided := permits + denies
	server := uint64(decisionsTotal(final))
	cross := 0.0
	if server > 0 || clientDecided > 0 {
		ref := float64(server)
		if ref == 0 {
			ref = float64(clientDecided)
		}
		cross = 100 * absF(float64(server)-float64(clientDecided)) / ref
	}

	res := &RunResult{
		Point:               p.Name,
		Seed:                seed,
		Requests:            len(ops),
		OpenLoop:            p.Rate > 0,
		Permits:             permits,
		Denies:              denies,
		Errors:              errs,
		ServerDecisions:     server,
		CrossCheckPct:       cross,
		DurationSec:         elapsed.Seconds(),
		Throughput:          float64(len(all)) / elapsed.Seconds(),
		PeakDecisionsPerSec: peak,
		P50Micros:           percentileMicros(all, 0.50),
		P99Micros:           percentileMicros(all, 0.99),
		P999Micros:          percentileMicros(all, 0.999),
		HandshakesFull:      uint64(final["gsi_handshakes_full_total"]),
		HandshakesResumed:   uint64(final["gsi_handshakes_resumed_total"]),
		Identities:          len(h.ids),
	}
	if res.PeakDecisionsPerSec == 0 && elapsed > 0 {
		// Run shorter than a scrape interval: fall back to the average.
		res.PeakDecisionsPerSec = float64(server) / elapsed.Seconds()
	}
	return res, nil
}

func percentileMicros(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1e3
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
