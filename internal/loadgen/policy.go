package loadgen

import (
	"fmt"

	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
	"gridauth/internal/workload"
)

// Policy shape names accepted by PolicyShape.Shape, mapping onto the
// P12 generators in internal/workload.
const (
	ShapeExact  = "exact"
	ShapePrefix = "prefix"
	ShapeReq    = "req"
)

// Load traffic constants: the job description every startup op submits,
// the jobtag it carries, and the data directory gridftp ops stay under.
const (
	LoadJobTag = "P13"
	LoadRSL    = "&(executable=app)(jobtag=" + LoadJobTag + ")(count=2)(maxtime=30)"
	LoadDir    = "/data/load"
	// LoadAccount is the single local account all synthetic identities
	// map to.
	LoadAccount = "load"
)

func loadRel(attr string, op rsl.Op, vals ...string) *rsl.Relation {
	r := &rsl.Relation{Attribute: attr, Op: op}
	for _, v := range vals {
		r.Values = append(r.Values, rsl.Lit(v))
	}
	return r
}

// loadGrants is the statement the harness appends to every P12 shape:
// org-wide grants for the non-startup traffic. Management of one's own
// jobs, MDS discovery, and data access under LoadDir. Startup traffic is
// authorized by the shape's own per-user (or per-group) grants, so the
// policy-shape axis of the grid stays on the hot path.
func loadGrants() *policy.Statement {
	return &policy.Statement{
		Subject: gsi.DN(workload.P12OrgPrefix),
		Sets: []*policy.AssertionSet{
			{Clauses: []*rsl.Relation{
				loadRel(policy.AttrAction, rsl.OpEq,
					policy.ActionCancel, policy.ActionInformation, policy.ActionSignal),
				loadRel(policy.AttrJobowner, rsl.OpEq, policy.ValueSelf),
			}},
			{Clauses: []*rsl.Relation{
				loadRel(policy.AttrAction, rsl.OpEq, policy.ActionInformation),
				loadRel("querytype", rsl.OpEq, "discovery"),
			}},
			{Clauses: []*rsl.Relation{
				loadRel(policy.AttrAction, rsl.OpEq, "get", "put", "delete", "list"),
				loadRel("dir", rsl.OpEq, LoadDir),
			}},
		},
	}
}

// BuildPolicy renders the point's policy: the selected P12 shape at the
// requested rule count, plus the loadGrants statement. It is also the
// policy half of `gridload -validate`: building the (small, probe-sized)
// policy proves the referenced shape exists before a run is attempted.
func BuildPolicy(shape string, rules int) (*policy.Policy, error) {
	if rules < 2 {
		return nil, fmt.Errorf("loadgen: policy needs at least 2 rules, got %d", rules)
	}
	var pol *policy.Policy
	switch shape {
	case ShapeExact:
		pol = workload.ExactHeavyPolicy(rules)
	case ShapePrefix:
		pol = workload.PrefixHeavyPolicy(rules)
	case ShapeReq:
		pol = workload.RequirementHeavyPolicy(rules)
	default:
		return nil, fmt.Errorf("loadgen: unknown policy shape %q", shape)
	}
	pol.Statements = append(pol.Statements, loadGrants())
	return pol, nil
}

// ValidatePolicy dry-runs the point's policy reference with a small
// probe build (the full rule count can take seconds to compile at 100k
// rules — -validate must stay fast).
func ValidatePolicy(p *Point) error {
	rules := p.Policy.Rules
	if rules == 0 {
		rules = DefaultRules
	}
	if rules > 16 {
		rules = 16
	}
	_, err := BuildPolicy(p.Policy.Shape, rules)
	return err
}
