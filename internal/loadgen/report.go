package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// ReportSchema versions the BENCH_load.json layout; benchdiff refuses
// to compare across schema versions.
const ReportSchema = 1

// PointSummary aggregates a point's repeats: medians for the latency
// and throughput figures (robust to a noisy repeat), maxima for the
// peak rate and the cross-check disagreement (worst case must hold).
type PointSummary struct {
	Point               string      `json:"point"`
	Identities          int         `json:"identities"` // materialized, max over repeats
	Requests            int         `json:"requests"`
	OpenLoop            bool        `json:"openLoop,omitempty"`
	P50Micros           float64     `json:"p50Micros"`
	P99Micros           float64     `json:"p99Micros"`
	P999Micros          float64     `json:"p999Micros"`
	Throughput          float64     `json:"throughput"`
	PeakDecisionsPerSec float64     `json:"peakDecisionsPerSec"`
	CrossCheckPct       float64     `json:"crossCheckPct"` // max over repeats
	Errors              uint64      `json:"errors"`        // total over repeats
	Runs                []RunResult `json:"runs"`
}

// Report is the machine-readable result of a grid run — the layout of
// BENCH_load.json at the repository root.
type Report struct {
	Schema int            `json:"schema"`
	Seed   int64          `json:"seed"`
	Points []PointSummary `json:"points"`
}

// RunGrid executes every point of the grid, Repeats times each (seed+r
// for repeat r, so repeats are distinct but reproducible), and
// aggregates per-point summaries. progress, when non-nil, receives a
// line per completed run.
func RunGrid(g *Grid, progress func(string)) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Schema: ReportSchema, Seed: g.Seed}
	for _, p := range g.Points {
		repeats := p.Repeats
		if repeats == 0 {
			repeats = g.Repeats
		}
		if repeats == 0 {
			repeats = 1
		}
		var runs []RunResult
		for r := 0; r < repeats; r++ {
			res, err := RunPoint(p, g.Seed+int64(r))
			if err != nil {
				return nil, fmt.Errorf("point %s repeat %d: %w", p.Name, r, err)
			}
			res.Repeat = r
			runs = append(runs, *res)
			if progress != nil {
				progress(fmt.Sprintf("%-24s repeat %d/%d: %8.0f ops/s  p99 %8.0fµs  peak %8.0f dec/s  xcheck %.2f%%  errs %d",
					p.Name, r+1, repeats, res.Throughput, res.P99Micros, res.PeakDecisionsPerSec, res.CrossCheckPct, res.Errors))
			}
		}
		rep.Points = append(rep.Points, summarize(runs))
	}
	return rep, nil
}

func summarize(runs []RunResult) PointSummary {
	s := PointSummary{
		Point:    runs[0].Point,
		Requests: runs[0].Requests,
		OpenLoop: runs[0].OpenLoop,
		Runs:     runs,
	}
	var p50, p99, p999, tput, peak []float64
	for _, r := range runs {
		p50 = append(p50, r.P50Micros)
		p99 = append(p99, r.P99Micros)
		p999 = append(p999, r.P999Micros)
		tput = append(tput, r.Throughput)
		peak = append(peak, r.PeakDecisionsPerSec)
		if r.Identities > s.Identities {
			s.Identities = r.Identities
		}
		if r.CrossCheckPct > s.CrossCheckPct {
			s.CrossCheckPct = r.CrossCheckPct
		}
		s.Errors += r.Errors
	}
	s.P50Micros = median(p50)
	s.P99Micros = median(p99)
	s.P999Micros = median(p999)
	s.Throughput = median(tput)
	s.PeakDecisionsPerSec = max64(peak)
	return s
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func max64(vs []float64) float64 {
	out := 0.0
	for _, v := range vs {
		if v > out {
			out = v
		}
	}
	return out
}

// WriteJSON writes the report to path, indented and newline-terminated
// so the committed BENCH_load.json diffs cleanly.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a BENCH_load.json file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// Table renders the human-readable summary table.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %10s %9s %11s %11s %11s %12s %8s %6s\n",
		"point", "identities", "requests", "p50(µs)", "p99(µs)", "p999(µs)", "peak dec/s", "xcheck%", "errs")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%-24s %10d %9d %11.0f %11.0f %11.0f %12.0f %8.2f %6d\n",
			p.Point, p.Identities, p.Requests, p.P50Micros, p.P99Micros, p.P999Micros,
			p.PeakDecisionsPerSec, p.CrossCheckPct, p.Errors)
	}
	return sb.String()
}

// Regression is one benchdiff finding: a point whose p99 latency grew
// past the tolerance relative to the baseline report.
type Regression struct {
	Point     string
	OldP99    float64
	NewP99    float64
	ChangePct float64
}

// Diff compares cur against the committed baseline: every point present
// in both reports whose median p99 grew by more than tolerancePct is a
// regression. Points present on only one side are reported via the
// second result (informational — grids evolve) and never fail the diff.
func Diff(baseline, cur *Report, tolerancePct float64) (regressions []Regression, notes []string, err error) {
	if baseline.Schema != cur.Schema {
		return nil, nil, fmt.Errorf("schema mismatch: baseline %d vs current %d", baseline.Schema, cur.Schema)
	}
	base := make(map[string]PointSummary, len(baseline.Points))
	for _, p := range baseline.Points {
		base[p.Point] = p
	}
	seen := make(map[string]bool, len(cur.Points))
	for _, p := range cur.Points {
		seen[p.Point] = true
		b, ok := base[p.Point]
		if !ok {
			notes = append(notes, fmt.Sprintf("point %s is new (no baseline)", p.Point))
			continue
		}
		if b.P99Micros <= 0 {
			notes = append(notes, fmt.Sprintf("point %s has no baseline p99", p.Point))
			continue
		}
		change := 100 * (p.P99Micros - b.P99Micros) / b.P99Micros
		if change > tolerancePct {
			regressions = append(regressions, Regression{
				Point: p.Point, OldP99: b.P99Micros, NewP99: p.P99Micros, ChangePct: change,
			})
		}
	}
	for _, p := range baseline.Points {
		if !seen[p.Point] {
			notes = append(notes, fmt.Sprintf("point %s dropped from the grid", p.Point))
		}
	}
	return regressions, notes, nil
}
