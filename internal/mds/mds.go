// Package mds fills the Monitoring and Discovery Service role the paper
// attributes to the Globus Toolkit ("mechanisms for ... resource
// monitoring and discovery (MDS)"): a registry where resources publish
// their state and clients discover gatekeepers to submit to.
//
// Resources register a Record (contact address, capacity, load, the VOs
// they serve) with a time-to-live; stale entries expire. Queries filter
// by VO and free capacity. Like every other service in this repository,
// queries can be put behind the authorization callout registry — the
// paper's "pluggable authorization in other components" — via QueryPDP,
// though anonymous discovery (the GT2 default) is also supported.
package mds

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gridauth/internal/audit"
	"gridauth/internal/core"
	"gridauth/internal/obs"
)

// ErrNotRegistered is returned when refreshing or deregistering an
// unknown resource.
var ErrNotRegistered = errors.New("mds: resource not registered")

// Record is one published resource entry.
type Record struct {
	// Name is the resource's unique name (host name).
	Name string `json:"name"`
	// Contact is the gatekeeper's address.
	Contact string `json:"contact"`
	// TotalCPUs and FreeCPUs describe capacity.
	TotalCPUs int `json:"totalCpus"`
	FreeCPUs  int `json:"freeCpus"`
	// QueuedJobs is the local scheduler's backlog.
	QueuedJobs int `json:"queuedJobs"`
	// VOs names the communities the resource serves.
	VOs []string `json:"vos,omitempty"`
	// Expires is when the record lapses unless refreshed.
	Expires time.Time `json:"expires"`
}

// ServesVO reports whether the record lists the VO (an empty list means
// any).
func (r *Record) ServesVO(vo string) bool {
	if len(r.VOs) == 0 {
		return true
	}
	for _, v := range r.VOs {
		if v == vo {
			return true
		}
	}
	return false
}

// Query filters discovery results.
type Query struct {
	// VO restricts to resources serving the community ("" = any).
	VO string
	// MinFreeCPUs restricts to resources with at least this much free
	// capacity.
	MinFreeCPUs int
}

// Directory is the registry (a GIIS in GT2 terms).
type Directory struct {
	mu      sync.Mutex
	entries map[string]*Record
	ttl     time.Duration
	now     func() time.Time
}

// Option configures the directory.
type Option func(*Directory)

// WithTTL sets the registration time-to-live (default 5 minutes).
func WithTTL(ttl time.Duration) Option {
	return func(d *Directory) { d.ttl = ttl }
}

// WithClock sets the time source.
func WithClock(now func() time.Time) Option {
	return func(d *Directory) { d.now = now }
}

// NewDirectory creates an empty directory.
func NewDirectory(opts ...Option) *Directory {
	d := &Directory{
		entries: make(map[string]*Record),
		ttl:     5 * time.Minute,
		now:     time.Now,
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Register publishes (or replaces) a record, stamping its expiry.
func (d *Directory) Register(r Record) error {
	if r.Name == "" || r.Contact == "" {
		return fmt.Errorf("mds: record needs name and contact")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := r
	cp.VOs = append([]string(nil), r.VOs...)
	cp.Expires = d.now().Add(d.ttl)
	d.entries[r.Name] = &cp
	return nil
}

// Refresh updates a resource's load figures and renews its lease.
func (d *Directory) Refresh(name string, freeCPUs, queuedJobs int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotRegistered, name)
	}
	e.FreeCPUs = freeCPUs
	e.QueuedJobs = queuedJobs
	e.Expires = d.now().Add(d.ttl)
	return nil
}

// Deregister withdraws a resource.
func (d *Directory) Deregister(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotRegistered, name)
	}
	delete(d.entries, name)
	return nil
}

// Find returns unexpired records matching the query, best-fit first
// (most free CPUs, then shortest queue, then name).
func (d *Directory) Find(q Query) []Record {
	now := d.now()
	d.mu.Lock()
	var out []Record
	for name, e := range d.entries {
		if !e.Expires.After(now) {
			delete(d.entries, name) // lazy expiry
			continue
		}
		if q.VO != "" && !e.ServesVO(q.VO) {
			continue
		}
		if e.FreeCPUs < q.MinFreeCPUs {
			continue
		}
		cp := *e
		cp.VOs = append([]string(nil), e.VOs...)
		out = append(out, cp)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].FreeCPUs != out[j].FreeCPUs {
			return out[i].FreeCPUs > out[j].FreeCPUs
		}
		if out[i].QueuedJobs != out[j].QueuedJobs {
			return out[i].QueuedJobs < out[j].QueuedJobs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Len reports the number of live records.
func (d *Directory) Len() int {
	return len(d.Find(Query{}))
}

// CalloutMDS is the abstract callout type guarding authenticated
// directory queries.
const CalloutMDS = "globus_mds_authz"

// QueryPDP wraps a directory query in the callout framework: the action
// is "information" and the spec carries the query attributes, so site
// policy can, e.g., restrict discovery to VO members. When log is
// non-nil every decision the wrapper acts on is recorded — discovery
// refusals are part of the audit trail too (nil disables auditing).
// Discovery is read-only, so docs/AUDIT.md's degraded-mode matrix
// allows drop mode here: a thinner trail beats stalled queries.
func QueryPDP(reg *core.Registry, d *Directory, log *audit.Log) func(req *core.Request, q Query) ([]Record, core.Decision) {
	return func(req *core.Request, q Query) ([]Record, core.Decision) {
		decision := reg.Invoke(CalloutMDS, req)
		if log != nil {
			log.Append(audit.Record{
				RequestID: obs.NewRequestID(),
				Subject:   req.Subject,
				Action:    req.Action,
				PDP:       CalloutMDS,
				Effect:    decision.Effect.String(),
				Source:    decision.Source,
				Reason:    decision.Reason,
			})
		}
		if decision.Effect != core.Permit {
			return nil, decision
		}
		return d.Find(q), decision
	}
}
