package mds

import (
	"errors"
	"testing"
	"time"

	"gridauth/internal/audit"
	"gridauth/internal/core"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

func fixedClock(t0 time.Time) (func() time.Time, func(time.Duration)) {
	now := t0
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestRegisterFindOrdering(t *testing.T) {
	d := NewDirectory()
	recs := []Record{
		{Name: "small.anl.gov", Contact: "a:1", TotalCPUs: 8, FreeCPUs: 2, QueuedJobs: 5, VOs: []string{"NFC"}},
		{Name: "big.anl.gov", Contact: "b:1", TotalCPUs: 128, FreeCPUs: 64, QueuedJobs: 0, VOs: []string{"NFC", "ATLAS"}},
		{Name: "open.anl.gov", Contact: "c:1", TotalCPUs: 16, FreeCPUs: 2, QueuedJobs: 1}, // serves any VO
	}
	for _, r := range recs {
		if err := d.Register(r); err != nil {
			t.Fatal(err)
		}
	}
	got := d.Find(Query{VO: "NFC"})
	if len(got) != 3 {
		t.Fatalf("Find = %d records", len(got))
	}
	if got[0].Name != "big.anl.gov" {
		t.Errorf("best fit = %s", got[0].Name)
	}
	// Equal free CPUs: shorter queue wins.
	if got[1].Name != "open.anl.gov" || got[2].Name != "small.anl.gov" {
		t.Errorf("tie break order = %s, %s", got[1].Name, got[2].Name)
	}
	// VO filter.
	if got := d.Find(Query{VO: "ATLAS"}); len(got) != 2 {
		t.Errorf("ATLAS resources = %d", len(got))
	}
	// Capacity filter.
	if got := d.Find(Query{MinFreeCPUs: 10}); len(got) != 1 || got[0].Name != "big.anl.gov" {
		t.Errorf("capacity filter = %v", got)
	}
	// Invalid registrations.
	if err := d.Register(Record{Name: "x"}); err == nil {
		t.Errorf("contactless record accepted")
	}
}

func TestExpiryAndRefresh(t *testing.T) {
	clock, advance := fixedClock(time.Date(2003, 6, 16, 12, 0, 0, 0, time.UTC))
	d := NewDirectory(WithTTL(time.Minute), WithClock(clock))
	if err := d.Register(Record{Name: "r", Contact: "a:1", FreeCPUs: 4}); err != nil {
		t.Fatal(err)
	}
	advance(30 * time.Second)
	if d.Len() != 1 {
		t.Fatalf("record expired early")
	}
	if err := d.Refresh("r", 2, 7); err != nil {
		t.Fatal(err)
	}
	advance(45 * time.Second) // 75s after registration, 45s after refresh
	got := d.Find(Query{})
	if len(got) != 1 || got[0].FreeCPUs != 2 || got[0].QueuedJobs != 7 {
		t.Fatalf("refreshed record = %+v", got)
	}
	advance(time.Minute)
	if d.Len() != 0 {
		t.Errorf("record survived TTL")
	}
	if err := d.Refresh("r", 1, 1); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("refresh expired = %v", err)
	}
	if err := d.Deregister("r"); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("deregister expired = %v", err)
	}
}

func TestDeregister(t *testing.T) {
	d := NewDirectory()
	if err := d.Register(Record{Name: "r", Contact: "a:1"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Deregister("r"); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("record survived deregister")
	}
}

func TestRecordsAreIsolated(t *testing.T) {
	d := NewDirectory()
	vos := []string{"NFC"}
	if err := d.Register(Record{Name: "r", Contact: "a:1", VOs: vos}); err != nil {
		t.Fatal(err)
	}
	vos[0] = "MUTATED"
	got := d.Find(Query{VO: "NFC"})
	if len(got) != 1 {
		t.Fatalf("registration aliased caller slice")
	}
	got[0].VOs[0] = "MUTATED-AGAIN"
	if d.Find(Query{VO: "NFC"})[0].VOs[0] != "NFC" {
		t.Errorf("Find leaked internal state")
	}
}

func TestQueryPDP(t *testing.T) {
	d := NewDirectory()
	if err := d.Register(Record{Name: "r", Contact: "a:1", VOs: []string{"NFC"}}); err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	reg.Bind(CalloutMDS, &core.PolicyPDP{Policy: policy.MustParse(
		`/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = information)(service = mds)`, "site")})
	log := audit.NewLog(16)
	query := QueryPDP(reg, d, log)

	member := &core.Request{
		Subject: "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey",
		Action:  policy.ActionInformation,
	}
	member.Spec = rsl.NewSpec().Set("service", "mds")
	recs, dec := query(member, Query{VO: "NFC"})
	if dec.Effect != core.Permit || len(recs) != 1 {
		t.Errorf("member query: %v, %d records (%s)", dec.Effect, len(recs), dec.Reason)
	}
	outsider := &core.Request{Subject: "/O=Else/CN=X", Action: policy.ActionInformation}
	outsider.Spec = member.Spec
	if recs, dec := query(outsider, Query{}); dec.Effect == core.Permit || recs != nil {
		t.Errorf("outsider query permitted")
	}
	if got := log.Len(); got != 2 {
		t.Errorf("audit log has %d records, want 2 (permit + refusal)", got)
	}
	if denies := log.Denials(); len(denies) != 1 {
		t.Errorf("audit log has %d denials, want 1", len(denies))
	}
}
