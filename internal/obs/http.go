package obs

import (
	"encoding/json"
	"net/http"
)

// NewServeMux returns the observability HTTP mux the gatekeeper serves
// on -metrics-addr:
//
//	GET /metrics      — the metric set in stable-ordered text form
//	GET /trace?id=R   — one finished trace as JSON (404 when unknown)
//	GET /traces       — retained request IDs as a JSON array
//
// Either argument may be nil; the corresponding endpoints then answer
// 404. Callers wanting pprof add net/http/pprof's handlers onto the
// returned mux themselves (see cmd/gatekeeper's -pprof flag) so the
// profiling surface is opt-in.
func NewServeMux(m *Metrics, s *TraceStore) *http.ServeMux {
	mux := http.NewServeMux()
	if m != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			// Write errors mean the client went away; nothing to do.
			_, _ = m.WriteTo(w)
		})
	}
	if s != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			id := r.URL.Query().Get("id")
			if id == "" {
				http.Error(w, "missing id parameter", http.StatusBadRequest)
				return
			}
			rec, ok := s.Get(id)
			if !ok {
				http.Error(w, "unknown request id", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(rec)
		})
		mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(s.RequestIDs())
		})
	}
	return mux
}
