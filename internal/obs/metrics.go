// Package obs is the observability layer: per-request decision traces
// (one span per PDP evaluated) and process-wide metrics (lock-cheap
// atomic counters, gauges and latency histograms). It is a pure-stdlib
// leaf package — it imports nothing else from this module — so every
// layer (core, resilience, gsi, gram, audit) can depend on it without
// cycles. Effects and breaker states cross into obs as plain strings
// for the same reason.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are safe for concurrent use and
// allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down). The
// zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// latencyBuckets are the histogram upper bounds, in seconds. They span
// the latencies this system actually exhibits: sub-microsecond
// in-process policy evaluation up through multi-second remote-callout
// timeouts.
const numLatencyBuckets = 18

var latencyBuckets = [numLatencyBuckets]float64{
	.000001, .00001, .0001, .00025, .0005, .001, .0025, .005,
	.01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observe is atomic per
// field (bucket count, sum, count), which is the usual metrics
// trade-off: a concurrent reader may see a bucket increment before the
// matching sum update, but totals are never lost. The zero value is
// ready to use and Observe is allocation-free.
type Histogram struct {
	buckets [numLatencyBuckets]atomic.Uint64 // cumulative-at-read, per-bucket at write
	sumNs   atomic.Int64
	count   atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	// Linear scan: the bucket list is short and the loop body is
	// branch-predictable; a binary search buys nothing at this size.
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	// Durations above the last bound land only in sum/count (the +Inf
	// bucket is synthesized at read time from count).
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Metrics is the process-wide metric set. All fields are safe for
// concurrent use; the update fast path (Counter.Inc, Gauge.Inc/Dec,
// Histogram.Observe) performs no allocation and takes no lock.
//
// The field set is mirrored by the descriptor table in descriptors();
// docs/OBSERVABILITY.md documents every metric and cmd/authlint fails
// if the two drift apart.
type Metrics struct {
	// Authorization decisions by final combined effect, counted at the
	// registry dispatch point (Registry.InvokeContext), i.e. once per
	// callout regardless of chain length.
	DecisionsPermit        Counter
	DecisionsDeny          Counter
	DecisionsError         Counter
	DecisionsNotApplicable Counter
	// DecisionSeconds is the end-to-end callout latency (cache hits
	// included).
	DecisionSeconds Histogram

	// Decision-cache effectiveness (core.CachedPDP).
	CacheHits   Counter
	CacheMisses Counter

	// Resilience layer (internal/resilience).
	AuthzRetries    Counter // extra attempts after a transient Error decision
	BreakerOpened   Counter // closed/half-open → open transitions
	BreakerHalfOpen Counter // open → half-open transitions
	BreakerClosed   Counter // half-open → closed transitions
	BreakerShed     Counter // calls refused outright by an open breaker

	// GSI handshakes (internal/gsi, authenticators built WithMetrics).
	HandshakesFull    Counter
	HandshakesResumed Counter
	HandshakesFailed  Counter

	// GSI resumption-ticket secret ring (gsi.SecretRing): rotation
	// outcomes at redemption time.
	TicketsOldSecret Counter // tickets redeemed under a superseded secret inside its overlap window
	TicketsRejected  Counter // resumption tickets refused at redemption (bad seal, expiry, unknown or retired secret version)

	// Policy static analysis (internal/policy/analyze): findings counted
	// each time an analyzed policy snapshot is installed in the store.
	PolicyFindings Counter // analyzer findings observed at policy install time

	// Cluster replication (internal/cluster): policy-epoch propagation
	// between gatekeeper nodes and the staleness guard.
	ClusterAuthFailures       Counter // replication-channel peers refused by the GSI handshake or subscriber policy
	ClusterDivergedSources    Gauge   // policy sources pinned on their last good policy after a snapshot parse failure
	ClusterEpoch              Gauge   // last replication epoch applied by this node
	ClusterPolicyFindings     Gauge   // analyzer findings in the current replicated policy state
	ClusterSnapshotsApplied   Counter // replicated snapshots applied by this node's follower
	ClusterSnapshotsPublished Counter // snapshots broadcast by this node's publisher
	ClusterSyncFailures       Counter // failed publisher connection/stream attempts
	ClusterStaleRefusals      Counter // decisions refused by the staleness guard (replica beyond max-staleness)

	// GRAM server (internal/gram).
	Requests         Counter // dispatched protocol requests
	RequestsInflight Gauge   // requests currently being dispatched
	ConnsActive      Gauge   // open authenticated connections
	QueueWaiting     Gauge   // requests blocked on a free connection worker

	// Audit pipeline (internal/audit, docs/AUDIT.md). Average batch
	// size is derived: AuditRecords / AuditBatches.
	AuditRecords        Counter   // records committed to the log
	AuditBatches        Counter   // group commits flushed
	AuditSegmentsSealed Counter   // segments rotated and sealed with a signed root
	AuditDropped        Counter   // records shed with the queue full (drop mode) or after Close
	AuditBlocked        Counter   // appends that waited for queue space (block mode)
	AuditQueueDepth     Gauge     // queued records, sampled at each group commit
	AuditFlushSeconds   Histogram // group-commit flush latency
}

// NewMetrics returns a fresh metric set.
func NewMetrics() *Metrics { return &Metrics{} }

// MetricDesc describes one metric for catalog comparison and rendering.
type MetricDesc struct {
	Name string
	Kind string // "counter", "gauge" or "histogram"
	Help string
}

// metricDesc binds a descriptor to its value reader. write renders the
// metric's text-format lines.
type metricDesc struct {
	MetricDesc
	write func(m *Metrics, w io.Writer) error
}

func counterDesc(name, help string, get func(*Metrics) *Counter) metricDesc {
	return metricDesc{MetricDesc{name, "counter", help}, func(m *Metrics, w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, get(m).Load())
		return err
	}}
}

func gaugeDesc(name, help string, get func(*Metrics) *Gauge) metricDesc {
	return metricDesc{MetricDesc{name, "gauge", help}, func(m *Metrics, w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, get(m).Load())
		return err
	}}
}

func histogramDesc(name, help string, get func(*Metrics) *Histogram) metricDesc {
	return metricDesc{MetricDesc{name, "histogram", help}, func(m *Metrics, w io.Writer) error {
		h := get(m)
		// Cumulative buckets, expvar-style flat names: one line per upper
		// bound, then +Inf, sum (seconds) and count.
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket_le_%s %d\n", name,
				strconv.FormatFloat(ub, 'g', -1, 64), cum); err != nil {
				return err
			}
		}
		count := h.count.Load()
		if _, err := fmt.Fprintf(w, "%s_bucket_le_inf %d\n", name, count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum().Seconds()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", name, count)
		return err
	}}
}

// descriptors is the single source of truth for metric names, kinds and
// render order. It is sorted by name; TestCatalogSorted enforces that,
// which makes /metrics output stable-ordered by construction.
var descriptors = []metricDesc{
	counterDesc("audit_batches_total", "audit group commits flushed", func(m *Metrics) *Counter { return &m.AuditBatches }),
	counterDesc("audit_blocked_total", "audit appends that waited for queue space (block mode)", func(m *Metrics) *Counter { return &m.AuditBlocked }),
	counterDesc("audit_dropped_total", "audit records shed with the queue full (drop mode) or after close", func(m *Metrics) *Counter { return &m.AuditDropped }),
	histogramDesc("audit_flush_seconds", "audit group-commit flush latency", func(m *Metrics) *Histogram { return &m.AuditFlushSeconds }),
	gaugeDesc("audit_queue_depth", "audit records queued for commit, sampled at each group commit", func(m *Metrics) *Gauge { return &m.AuditQueueDepth }),
	counterDesc("audit_records_total", "audit records committed to the log", func(m *Metrics) *Counter { return &m.AuditRecords }),
	counterDesc("audit_segments_sealed_total", "audit segments rotated and sealed with a signed root", func(m *Metrics) *Counter { return &m.AuditSegmentsSealed }),
	counterDesc("authz_cache_hits_total", "decision-cache hits", func(m *Metrics) *Counter { return &m.CacheHits }),
	counterDesc("authz_cache_misses_total", "decision-cache misses", func(m *Metrics) *Counter { return &m.CacheMisses }),
	histogramDesc("authz_decision_seconds", "combined callout decision latency", func(m *Metrics) *Histogram { return &m.DecisionSeconds }),
	counterDesc("authz_decisions_deny_total", "callout decisions with effect deny", func(m *Metrics) *Counter { return &m.DecisionsDeny }),
	counterDesc("authz_decisions_error_total", "callout decisions with effect error (authorization system failure)", func(m *Metrics) *Counter { return &m.DecisionsError }),
	counterDesc("authz_decisions_not_applicable_total", "callout decisions with effect not-applicable", func(m *Metrics) *Counter { return &m.DecisionsNotApplicable }),
	counterDesc("authz_decisions_permit_total", "callout decisions with effect permit", func(m *Metrics) *Counter { return &m.DecisionsPermit }),
	counterDesc("authz_retries_total", "extra PDP attempts after transient Error decisions", func(m *Metrics) *Counter { return &m.AuthzRetries }),
	counterDesc("breaker_closed_total", "circuit-breaker half-open to closed transitions", func(m *Metrics) *Counter { return &m.BreakerClosed }),
	counterDesc("breaker_half_open_total", "circuit-breaker open to half-open transitions", func(m *Metrics) *Counter { return &m.BreakerHalfOpen }),
	counterDesc("breaker_opened_total", "circuit-breaker transitions to open", func(m *Metrics) *Counter { return &m.BreakerOpened }),
	counterDesc("breaker_shed_total", "calls refused by an open circuit breaker", func(m *Metrics) *Counter { return &m.BreakerShed }),
	counterDesc("cluster_auth_failures_total", "cluster replication peers refused by the GSI handshake or subscriber policy", func(m *Metrics) *Counter { return &m.ClusterAuthFailures }),
	gaugeDesc("cluster_diverged_sources", "policy sources pinned on their last good policy after a replicated snapshot failed to parse", func(m *Metrics) *Gauge { return &m.ClusterDivergedSources }),
	gaugeDesc("cluster_epoch", "last cluster replication epoch applied by this node", func(m *Metrics) *Gauge { return &m.ClusterEpoch }),
	gaugeDesc("cluster_policy_findings", "static-analyzer findings in the current replicated policy state", func(m *Metrics) *Gauge { return &m.ClusterPolicyFindings }),
	counterDesc("cluster_snapshots_applied_total", "replicated policy snapshots applied by this node's follower", func(m *Metrics) *Counter { return &m.ClusterSnapshotsApplied }),
	counterDesc("cluster_snapshots_published_total", "policy snapshots broadcast by this node's publisher", func(m *Metrics) *Counter { return &m.ClusterSnapshotsPublished }),
	counterDesc("cluster_stale_refusals_total", "decisions refused by the staleness guard with the replica beyond max-staleness", func(m *Metrics) *Counter { return &m.ClusterStaleRefusals }),
	counterDesc("cluster_sync_failures_total", "failed connection or stream attempts to the cluster publisher", func(m *Metrics) *Counter { return &m.ClusterSyncFailures }),
	gaugeDesc("gram_connections_active", "open authenticated GRAM connections", func(m *Metrics) *Gauge { return &m.ConnsActive }),
	gaugeDesc("gram_queue_waiting", "requests waiting for a free connection worker", func(m *Metrics) *Gauge { return &m.QueueWaiting }),
	gaugeDesc("gram_requests_inflight", "GRAM requests currently dispatching", func(m *Metrics) *Gauge { return &m.RequestsInflight }),
	counterDesc("gram_requests_total", "dispatched GRAM protocol requests", func(m *Metrics) *Counter { return &m.Requests }),
	counterDesc("gsi_handshakes_failed_total", "failed GSI handshakes", func(m *Metrics) *Counter { return &m.HandshakesFailed }),
	counterDesc("gsi_handshakes_full_total", "full (non-resumed) GSI handshakes", func(m *Metrics) *Counter { return &m.HandshakesFull }),
	counterDesc("gsi_handshakes_resumed_total", "session-resumed GSI handshakes", func(m *Metrics) *Counter { return &m.HandshakesResumed }),
	counterDesc("gsi_tickets_old_secret_total", "resumption tickets redeemed under a superseded ring secret inside its rotation overlap window", func(m *Metrics) *Counter { return &m.TicketsOldSecret }),
	counterDesc("gsi_tickets_rejected_total", "resumption tickets refused at redemption (bad seal, expiry, unknown or retired secret version)", func(m *Metrics) *Counter { return &m.TicketsRejected }),
	counterDesc("policy_findings_total", "static-analyzer findings observed at policy install time", func(m *Metrics) *Counter { return &m.PolicyFindings }),
}

// Catalog returns the documented metric set, sorted by name.
func Catalog() []MetricDesc {
	out := make([]MetricDesc, len(descriptors))
	for i, d := range descriptors {
		out[i] = d.MetricDesc
	}
	return out
}

// WriteTo renders the metrics in the expvar-style text format served at
// GET /metrics: one "name value" line per scalar, histograms expanded
// into cumulative _bucket_le_*, _sum and _count lines. Output order is
// stable (descriptor order, which is sorted by name).
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	for _, d := range descriptors {
		if err := d.write(m, cw); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
