package obs

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- metrics ---

func TestCounterGaugeConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.DecisionsPermit.Inc()
				m.AuthzRetries.Add(2)
				m.RequestsInflight.Inc()
				m.RequestsInflight.Dec()
				// Snapshot reads race-free against writers.
				_ = m.DecisionsPermit.Load()
				var buf bytes.Buffer
				if i%100 == 0 {
					if _, err := m.WriteTo(&buf); err != nil {
						t.Errorf("WriteTo: %v", err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := m.DecisionsPermit.Load(); got != workers*per {
		t.Errorf("DecisionsPermit = %d, want %d", got, workers*per)
	}
	if got := m.AuthzRetries.Load(); got != 2*workers*per {
		t.Errorf("AuthzRetries = %d, want %d", got, 2*workers*per)
	}
	if got := m.RequestsInflight.Load(); got != 0 {
		t.Errorf("RequestsInflight = %d, want 0", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	// One observation exactly on each upper bound: le buckets are
	// inclusive, so each lands in its own bucket.
	for _, ub := range latencyBuckets {
		h.Observe(time.Duration(ub * float64(time.Second)))
	}
	// And one beyond the last bound: only +Inf (synthesized from count).
	h.Observe(time.Hour)
	for i := range latencyBuckets {
		if got := h.buckets[i].Load(); got != 1 {
			t.Errorf("bucket[%d] (le=%g) = %d, want 1", i, latencyBuckets[i], got)
		}
	}
	if got := h.Count(); got != uint64(len(latencyBuckets))+1 {
		t.Errorf("Count = %d, want %d", got, len(latencyBuckets)+1)
	}

	var buf bytes.Buffer
	m := NewMetrics()
	m.DecisionSeconds.Observe(300 * time.Microsecond) // between .00025 and .0005
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"authz_decision_seconds_bucket_le_0.00025 0\n",
		"authz_decision_seconds_bucket_le_0.0005 1\n",
		"authz_decision_seconds_bucket_le_inf 1\n",
		"authz_decision_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(seed+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("Count = %d, want %d", got, workers*per)
	}
}

var metricLine = regexp.MustCompile(`^[a-z][a-z0-9_.+-]* -?[0-9][0-9a-zA-Z.+-]*$`)

func TestMetricsOutputParsesAndIsStable(t *testing.T) {
	m := NewMetrics()
	m.DecisionsPermit.Add(3)
	m.DecisionSeconds.Observe(time.Millisecond)
	m.ConnsActive.Set(2)

	var a, b bytes.Buffer
	if _, err := m.WriteTo(&a); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if a.String() != b.String() {
		t.Error("two renders of an unchanged metric set differ (output not stable)")
	}

	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	var baseNames []string
	seen := make(map[string]bool)
	for _, ln := range lines {
		if !metricLine.MatchString(ln) {
			t.Errorf("line does not parse as 'name value': %q", ln)
			continue
		}
		name, valStr, _ := strings.Cut(ln, " ")
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Errorf("value of %q does not parse as a number: %v", ln, err)
		}
		base := name
		for _, suffix := range []string{"_sum", "_count"} {
			base = strings.TrimSuffix(base, suffix)
		}
		if i := strings.Index(base, "_bucket_le_"); i >= 0 {
			base = base[:i]
		}
		if !seen[base] {
			seen[base] = true
			baseNames = append(baseNames, base)
		}
	}
	if !sort.StringsAreSorted(baseNames) {
		t.Errorf("metric base names not sorted: %v", baseNames)
	}
	// Rendered names correspond one-to-one with the catalog.
	cat := Catalog()
	if len(baseNames) != len(cat) {
		t.Fatalf("rendered %d distinct metrics, catalog has %d", len(baseNames), len(cat))
	}
	for i, d := range cat {
		if baseNames[i] != d.Name {
			t.Errorf("rendered[%d] = %q, catalog %q", i, baseNames[i], d.Name)
		}
	}
}

func TestCatalogSorted(t *testing.T) {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, d := range cat {
		names[i] = d.Name
		if d.Kind != "counter" && d.Kind != "gauge" && d.Kind != "histogram" {
			t.Errorf("metric %q has unknown kind %q", d.Name, d.Kind)
		}
		if d.Help == "" {
			t.Errorf("metric %q has no help text", d.Name)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("catalog not sorted by name: %v", names)
	}
}

func TestMetricsFastPathAllocates(t *testing.T) {
	m := NewMetrics()
	if n := testing.AllocsPerRun(100, func() { m.DecisionsPermit.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { m.ConnsActive.Inc(); m.ConnsActive.Dec() }); n != 0 {
		t.Errorf("Gauge.Inc/Dec allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { m.DecisionSeconds.Observe(time.Millisecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op, want 0", n)
	}
}

// --- trace ---

func TestTraceSpansAndSnapshot(t *testing.T) {
	tr := NewTrace("rid-1", "/O=Grid/CN=Alice")
	tr.Record(Span{PDP: "policy:vo", Effect: "permit", Source: "VO:NFC", Elapsed: time.Microsecond})
	tr.Record(Span{PDP: "policy:local", Effect: "deny", Source: "local", Elapsed: 2 * time.Microsecond})
	tr.SetParallel()
	if tr.Finished() {
		t.Error("Finished before Finish")
	}
	tr.Finish("globus_gram_jobmanager_authz", "start", "deny", "local", "queue not allowed")
	if !tr.Finished() {
		t.Error("not Finished after Finish")
	}
	rec := tr.Snapshot()
	if rec.RequestID != "rid-1" || rec.Subject != "/O=Grid/CN=Alice" {
		t.Errorf("identity fields wrong: %+v", rec)
	}
	if rec.Callout != "globus_gram_jobmanager_authz" || rec.Action != "start" ||
		rec.Effect != "deny" || rec.Source != "local" || !rec.Parallel {
		t.Errorf("summary fields wrong: %+v", rec)
	}
	if len(rec.Spans) != 2 || rec.Spans[0].PDP != "policy:vo" || rec.Spans[1].Effect != "deny" {
		t.Errorf("spans wrong: %+v", rec.Spans)
	}
	// Snapshot is a copy: mutating the trace afterwards must not affect it.
	tr.Record(Span{PDP: "late"})
	if len(rec.Spans) != 2 {
		t.Error("snapshot aliases live span slice")
	}
}

func TestTraceConcurrentRecord(t *testing.T) {
	tr := NewTrace("rid-c", "s")
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				tr.Record(Span{PDP: fmt.Sprintf("pdp-%d", i), Effect: "permit"})
				_ = tr.Spans()
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != workers*per {
		t.Errorf("span count = %d, want %d", got, workers*per)
	}
}

func TestSpanContextAnnotation(t *testing.T) {
	ctx := context.Background()
	if SpanFrom(ctx) != nil || TraceFrom(ctx) != nil || RequestIDFrom(ctx) != "" {
		t.Error("empty context should carry nothing")
	}
	sp := &Span{PDP: "p"}
	ctx = WithSpan(ctx, sp)
	SpanFrom(ctx).Retries = 3
	SpanFrom(ctx).Breaker = "open"
	if sp.Retries != 3 || sp.Breaker != "open" {
		t.Errorf("annotation through context lost: %+v", sp)
	}
	ctx = WithRequestID(ctx, "rid-9")
	if got := RequestIDFrom(ctx); got != "rid-9" {
		t.Errorf("RequestIDFrom = %q", got)
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	const workers, per = 8, 500
	var mu sync.Mutex
	seen := make(map[string]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]string, 0, per)
			for i := 0; i < per; i++ {
				ids = append(ids, NewRequestID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate request ID %q", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

// --- store ---

func TestTraceStoreEviction(t *testing.T) {
	s := NewTraceStore(3)
	for i := 1; i <= 5; i++ {
		tr := NewTrace(fmt.Sprintf("rid-%d", i), "s")
		tr.Finish("c", "start", "permit", "", "")
		s.Publish(tr)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if _, ok := s.Get("rid-1"); ok {
		t.Error("oldest trace not evicted")
	}
	if _, ok := s.Get("rid-2"); ok {
		t.Error("second-oldest trace not evicted")
	}
	for i := 3; i <= 5; i++ {
		if _, ok := s.Get(fmt.Sprintf("rid-%d", i)); !ok {
			t.Errorf("rid-%d missing", i)
		}
	}
	want := []string{"rid-3", "rid-4", "rid-5"}
	got := s.RequestIDs()
	if len(got) != len(want) {
		t.Fatalf("RequestIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RequestIDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTraceStoreNilSafe(t *testing.T) {
	var s *TraceStore
	s.Publish(NewTrace("x", "y")) // must not panic
}

func TestTraceStoreConcurrent(t *testing.T) {
	s := NewTraceStore(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr := NewTrace(fmt.Sprintf("w%d-%d", i, j), "s")
				s.Publish(tr)
				s.Get(fmt.Sprintf("w%d-%d", i, j))
				s.RequestIDs()
			}
		}(w)
	}
	wg.Wait()
}

// --- http ---

func TestServeMuxEndpoints(t *testing.T) {
	m := NewMetrics()
	m.DecisionsDeny.Inc()
	s := NewTraceStore(8)
	tr := NewTrace("rid-h", "/O=Grid/CN=Alice")
	tr.Record(Span{PDP: "policy:vo", Effect: "deny"})
	tr.Finish("globus_gram_jobmanager_authz", "start", "deny", "VO:NFC", "no grant")
	s.Publish(tr)

	srv := httptest.NewServer(NewServeMux(m, s))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, buf.String()
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "authz_decisions_deny_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body = get("/trace?id=rid-h")
	if code != http.StatusOK || !strings.Contains(body, `"requestId":"rid-h"`) ||
		!strings.Contains(body, `"pdp":"policy:vo"`) {
		t.Errorf("/trace = %d %q", code, body)
	}
	if code, _ = get("/trace?id=nope"); code != http.StatusNotFound {
		t.Errorf("/trace unknown id = %d, want 404", code)
	}
	if code, _ = get("/trace"); code != http.StatusBadRequest {
		t.Errorf("/trace without id = %d, want 400", code)
	}
	code, body = get("/traces")
	if code != http.StatusOK || !strings.Contains(body, "rid-h") {
		t.Errorf("/traces = %d %q", code, body)
	}
}
