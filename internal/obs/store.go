package obs

import "sync"

// TraceStore retains the most recent finished traces, retrievable by
// request ID — the in-memory analogue of the audit.Log ring, but
// holding full decision paths. Old traces are evicted once the
// capacity is exceeded.
type TraceStore struct {
	mu    sync.Mutex
	byID  map[string]TraceRecord
	order []string // request IDs, oldest first (ring)
	start int
	count int
}

// NewTraceStore creates a store holding up to capacity traces.
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = 1024
	}
	return &TraceStore{
		byID:  make(map[string]TraceRecord, capacity),
		order: make([]string, capacity),
	}
}

// Publish snapshots a finished trace into the store. Publish after the
// request completes; the snapshot is immutable thereafter.
func (s *TraceStore) Publish(t *Trace) {
	if s == nil || t == nil {
		return
	}
	rec := t.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.byID[rec.RequestID]; exists {
		// Same request republished (should not happen — dispatch publishes
		// once): keep the newest snapshot, ring position unchanged.
		s.byID[rec.RequestID] = rec
		return
	}
	idx := (s.start + s.count) % len(s.order)
	if s.count == len(s.order) {
		delete(s.byID, s.order[s.start])
		s.start = (s.start + 1) % len(s.order)
	} else {
		s.count++
	}
	s.order[idx] = rec.RequestID
	s.byID[rec.RequestID] = rec
}

// Get returns the trace published under a request ID.
func (s *TraceStore) Get(requestID string) (TraceRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byID[requestID]
	return rec, ok
}

// Len reports the number of retained traces.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// RequestIDs returns the retained request IDs, oldest first.
func (s *TraceStore) RequestIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.count)
	for i := 0; i < s.count; i++ {
		out = append(out, s.order[(s.start+i)%len(s.order)])
	}
	return out
}
