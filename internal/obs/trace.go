package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span records one PDP evaluation inside a traced request: which
// decision point ran, what it decided, how long it took, and what the
// cache/resilience machinery did on the way.
//
// Lifecycle: the tracing wrapper in core creates the span, publishes a
// pointer to it on the evaluation context (WithSpan), runs the inner
// PDP — during which the resilience layer may annotate Retries and
// Breaker through SpanFrom, on the same goroutine — and only then
// records the finished value on the Trace. A span is therefore never
// written after it becomes visible to Trace readers.
type Span struct {
	// PDP is the decision point's name.
	PDP string `json:"pdp"`
	// Effect is the decision effect as a string ("permit", "deny",
	// "error", "not-applicable").
	Effect string `json:"effect"`
	// Source labels the policy source behind the decision.
	Source string `json:"source,omitempty"`
	// Elapsed is the evaluation latency.
	Elapsed time.Duration `json:"elapsedNanos"`
	// CacheHit marks a decision served from the decision cache (no PDP
	// ran; PDP names the cache wrapper).
	CacheHit bool `json:"cacheHit,omitempty"`
	// Retries is how many extra attempts the resilience layer spent on
	// transient Error decisions.
	Retries int `json:"retries,omitempty"`
	// Breaker is the circuit-breaker state observed for this PDP
	// ("closed", "open", "half-open"), empty when no breaker is
	// configured.
	Breaker string `json:"breaker,omitempty"`
}

// Trace accumulates the decision path of one gatekeeper request: the
// spans of every PDP evaluated plus the summary the enforcement point
// acted on. It is safe for concurrent use (parallel chains record spans
// from several goroutines).
type Trace struct {
	requestID string
	subject   string
	start     time.Time

	mu       sync.Mutex
	callout  string
	action   string
	effect   string
	source   string
	reason   string
	elapsed  time.Duration
	parallel bool
	finished bool
	spans    []Span
}

// TraceRecord is the immutable snapshot of a Trace, as served by the
// /trace endpoint and attached to audit records.
type TraceRecord struct {
	RequestID string        `json:"requestId"`
	Subject   string        `json:"subject,omitempty"`
	Callout   string        `json:"callout,omitempty"`
	Action    string        `json:"action,omitempty"`
	Effect    string        `json:"effect,omitempty"`
	Source    string        `json:"source,omitempty"`
	Reason    string        `json:"reason,omitempty"`
	Start     time.Time     `json:"start"`
	Elapsed   time.Duration `json:"elapsedNanos"`
	Parallel  bool          `json:"parallel,omitempty"`
	Spans     []Span        `json:"spans,omitempty"`
}

// NewTrace starts a trace for one request.
func NewTrace(requestID, subject string) *Trace {
	return &Trace{requestID: requestID, subject: subject, start: time.Now()}
}

// RequestID returns the request correlation ID the trace was started
// with.
func (t *Trace) RequestID() string { return t.requestID }

// Record appends one finished span.
func (t *Trace) Record(sp Span) {
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// SetParallel marks that the chain fanned its PDPs out concurrently.
func (t *Trace) SetParallel() {
	t.mu.Lock()
	t.parallel = true
	t.mu.Unlock()
}

// Finish stores the summary the enforcement point acted on and stamps
// the total elapsed time. A request makes at most one callout, so
// Finish runs at most once per trace in practice; if called again the
// last call wins.
func (t *Trace) Finish(callout, action, effect, source, reason string) {
	t.mu.Lock()
	t.callout, t.action = callout, action
	t.effect, t.source, t.reason = effect, source, reason
	t.elapsed = time.Since(t.start)
	t.finished = true
	t.mu.Unlock()
}

// Finished reports whether Finish has run (i.e. an enforcement point
// acted on a decision; requests refused before any callout — a limited
// proxy asking to start a job — never finish their trace).
func (t *Trace) Finished() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finished
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Snapshot returns the trace as an immutable record.
func (t *Trace) Snapshot() TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	return TraceRecord{
		RequestID: t.requestID,
		Subject:   t.subject,
		Callout:   t.callout,
		Action:    t.action,
		Effect:    t.effect,
		Source:    t.source,
		Reason:    t.reason,
		Start:     t.start,
		Elapsed:   t.elapsed,
		Parallel:  t.parallel,
		Spans:     spans,
	}
}

// Request IDs: a per-process random prefix plus an atomic sequence
// number. Uniqueness within a process is guaranteed by the counter;
// the prefix keeps IDs from different gatekeeper processes (or
// restarts) from colliding in aggregated logs without paying for
// crypto/rand on every request.
var (
	ridPrefix   = makeRIDPrefix()
	ridSequence atomic.Uint64
)

func makeRIDPrefix() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// No entropy source: fall back to a time-derived prefix. IDs stay
		// unique within the process either way.
		return strconv.FormatInt(time.Now().UnixNano(), 36) + "-"
	}
	return hex.EncodeToString(b[:]) + "-"
}

// NewRequestID returns a process-unique request correlation ID.
func NewRequestID() string {
	return ridPrefix + strconv.FormatUint(ridSequence.Add(1), 10)
}

type ctxKey int

const (
	ctxKeyTrace ctxKey = iota
	ctxKeySpan
	ctxKeyRequestID
)

// WithTrace attaches a trace to the request context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKeyTrace, t)
}

// TraceFrom returns the context's trace, or nil. This is the tracing
// on/off switch: instrumented code does nothing beyond this lookup when
// no trace was requested.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKeyTrace).(*Trace)
	return t
}

// WithSpan attaches the span under construction to the evaluation
// context, so layers below the tracing wrapper (resilience) can
// annotate it.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKeySpan, sp)
}

// SpanFrom returns the span under construction, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKeySpan).(*Span)
	return sp
}

// WithRequestID attaches a request correlation ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}
