// Package analyze statically checks compiled policy sets for semantic
// defects the evaluator cannot report at decision time: grants that can
// never fire (shadowed or internally contradictory), requirements that
// deny everything they touch, community grants the local policy can
// never honour under the combination rules, management grants that let
// a subject extend its own rights, and actions no statement covers.
//
// Every claim is conservative: the analyzer only reports what it can
// prove under the evaluator's exact semantics, so a clean policy like
// the paper's Figure 3 produces zero findings, and every finding marked
// Deletable can be removed (see Tombstone) without changing a single
// decision. docs/POLICY-ANALYSIS.md describes the finding classes and
// the pre-publish workflow.
package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"gridauth/internal/gsi"
	"gridauth/internal/policy"
)

// Severity ranks findings. The zero value means "unset".
type Severity int

const (
	// SeverityInfo marks advisory findings (coverage gaps).
	SeverityInfo Severity = iota + 1
	// SeverityWarning marks defects that waste policy but do not change
	// decisions (shadowed or unreachable grants).
	SeverityWarning
	// SeverityError marks defects that silently deny or escalate
	// (unsatisfiable requirements, cross-source conflicts, escalation).
	SeverityError
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// ParseSeverity maps a severity name to its value.
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "info":
		return SeverityInfo, nil
	case "warning", "warn":
		return SeverityWarning, nil
	case "error":
		return SeverityError, nil
	default:
		return 0, fmt.Errorf("analyze: unknown severity %q (want info, warning or error)", s)
	}
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	v, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Finding classes.
const (
	// ClassShadow: a grant an earlier grant in the same subject chain
	// already decides entirely.
	ClassShadow = "shadow"
	// ClassUnreachable: a set whose conjunction no request can satisfy.
	ClassUnreachable = "unreachable"
	// ClassConflict: a community grant local policy can never honour.
	ClassConflict = "conflict"
	// ClassEscalation: a management grant that lets a subject extend
	// its own (or its prefix chain's) rights.
	ClassEscalation = "escalation"
	// ClassCoverage: a known action no statement mentions.
	ClassCoverage = "coverage"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Class    string   `json:"class"`
	Severity Severity `json:"severity"`
	// Source is the policy source label the finding anchors to ("" for
	// cross-source coverage gaps).
	Source string `json:"source,omitempty"`
	// Subject is the statement subject the finding concerns.
	Subject gsi.DN `json:"subject,omitempty"`
	// Line is the 1-based source line of the assertion set (0 when the
	// policy was built in code or the finding is not set-scoped).
	Line int `json:"line,omitempty"`
	// Label identifies the assertion set as "subject#index", the same
	// form decision reasons use. Empty for coverage findings.
	Label string `json:"label,omitempty"`
	// Stmt and Set locate the assertion set in the source policy
	// (indices into Policy.Statements and Statement.Sets); -1 when the
	// finding is not set-scoped.
	Stmt int `json:"stmt"`
	Set  int `json:"set"`
	// Related names the other set involved: the shadowing grant for
	// shadow findings, the local set for conflict findings.
	Related string `json:"related,omitempty"`
	// Deletable reports that removing the set (Tombstone) provably
	// changes no decision — the differential harness enforces this.
	Deletable bool   `json:"deletable,omitempty"`
	Message   string `json:"message"`
}

// String renders the finding as "source:line: severity: class: message".
func (f Finding) String() string {
	var sb strings.Builder
	if f.Source != "" {
		sb.WriteString(f.Source)
		if f.Line > 0 {
			fmt.Fprintf(&sb, ":%d", f.Line)
		}
		sb.WriteString(": ")
	}
	fmt.Fprintf(&sb, "%s: %s: ", f.Severity, f.Class)
	if f.Label != "" {
		fmt.Fprintf(&sb, "%s: ", f.Label)
	}
	sb.WriteString(f.Message)
	return sb.String()
}

// Report is the result of one analysis run.
type Report struct {
	// Findings, most severe first (ties in source order).
	Findings []Finding `json:"findings"`
	// Sources lists the analyzed policy source labels.
	Sources []string `json:"sources"`
	// Skipped reports that the quadratic passes (shadow, conflict) were
	// skipped because the policy set exceeded Options.MaxSets.
	Skipped bool `json:"skipped,omitempty"`
}

// Count returns how many findings are at or above min.
func (r *Report) Count(min Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity >= min {
			n++
		}
	}
	return n
}

// Max returns the highest severity present (0 for a clean report).
func (r *Report) Max() Severity {
	var m Severity
	for _, f := range r.Findings {
		if f.Severity > m {
			m = f.Severity
		}
	}
	return m
}

// ByClass returns the findings of one class, in report order.
func (r *Report) ByClass(class string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Class == class {
			out = append(out, f)
		}
	}
	return out
}

// DefaultManagementActions are the management verbs the escalation pass
// looks for when Options.ManagementActions is empty: the voadmin-style
// rights-administration writes of the paper's community policy.
var DefaultManagementActions = []string{"grant", "revoke"}

// DefaultGranteeAttr is the request attribute naming the identity whose
// rights a management action changes.
const DefaultGranteeAttr = "grantee"

// Options tunes an analysis run. The zero value is a sensible default
// for single-policy lint runs.
type Options struct {
	// Actions is the site's action registry for coverage analysis; an
	// empty list disables the coverage pass.
	Actions []string
	// ManagementActions are the verbs that rewrite rights (escalation
	// pass). Empty selects DefaultManagementActions.
	ManagementActions []string
	// GranteeAttr is the attribute scoping who a management action may
	// target. Empty selects DefaultGranteeAttr.
	GranteeAttr string
	// LocalSources names the resource-owner policy sources for the
	// cross-source conflict pass; every other source is treated as a
	// community (VO/CAS) policy. Empty selects every source whose label
	// contains "local" (case-insensitive).
	LocalSources []string
	// MaxSets caps the total assertion-set count for the quadratic
	// passes (shadow, conflict); beyond it those passes are skipped and
	// Report.Skipped is set. 0 selects 20000.
	MaxSets int
}

func (o Options) withDefaults() Options {
	if len(o.ManagementActions) == 0 {
		o.ManagementActions = DefaultManagementActions
	}
	if o.GranteeAttr == "" {
		o.GranteeAttr = DefaultGranteeAttr
	}
	if o.MaxSets <= 0 {
		o.MaxSets = 20000
	}
	return o
}

// Analyze runs every pass with default options over one or more
// compiled policy sources.
func Analyze(compiled ...*policy.Compiled) *Report {
	return With(Options{}, compiled...)
}

// With runs every pass with explicit options.
func With(opts Options, compiled ...*policy.Compiled) *Report {
	a := &analyzer{opts: opts.withDefaults(), rep: &Report{}}
	total := 0
	for _, c := range compiled {
		if c == nil {
			continue
		}
		si := newSrcInfo(c)
		a.srcs = append(a.srcs, si)
		a.rep.Sources = append(a.rep.Sources, c.Source())
		total += si.setCount
	}
	a.unreachable()
	if total > a.opts.MaxSets {
		a.rep.Skipped = true
	} else {
		a.shadows()
		a.conflicts()
	}
	a.escalation()
	a.coverage()
	a.sortFindings()
	return a.rep
}

// setInfo caches the folded form and unsatisfiability verdict of one
// assertion set.
type setInfo struct {
	src    *srcInfo
	st     *policy.Statement
	si, gi int
	set    *policy.AssertionSet
	fold   map[string]*cons
	order  []string
	unsat  bool // no request can satisfy the set
	isReq  bool
}

func (s *setInfo) label() string {
	return fmt.Sprintf("%s#%d", s.st.Subject, s.gi)
}

// srcInfo is the per-source analysis state.
type srcInfo struct {
	c        *policy.Compiled
	pol      *policy.Policy
	stmtIdx  map[*policy.Statement]int
	sets     [][]*setInfo
	setCount int
}

func newSrcInfo(c *policy.Compiled) *srcInfo {
	pol := c.Policy()
	si := &srcInfo{c: c, pol: pol, stmtIdx: make(map[*policy.Statement]int, len(pol.Statements))}
	for i, st := range pol.Statements {
		si.stmtIdx[st] = i
		infos := make([]*setInfo, len(st.Sets))
		for g, set := range st.Sets {
			m, order := foldClauses(set.Clauses, false)
			infos[g] = &setInfo{src: si, st: st, si: i, gi: g, set: set, fold: m, order: order, isReq: set.IsRequirement()}
			si.setCount++
		}
		si.sets = append(si.sets, infos)
	}
	return si
}

type analyzer struct {
	opts Options
	rep  *Report
	srcs []*srcInfo
}

func (a *analyzer) add(f Finding) { a.rep.Findings = append(a.rep.Findings, f) }

// unreachable flags every set whose conjunction is provably
// unsatisfiable. A dead grant is deletable noise; a dead requirement
// with a live action selector is an error, because it denies every
// request it applies to. (Contradictory requirements are NOT deletable:
// deleting one widens the policy.)
func (a *analyzer) unreachable() {
	for _, src := range a.srcs {
		for _, infos := range src.sets {
			for _, info := range infos {
				_, reason, onAction, bad := unsatisfiable(info.fold, info.order)
				if !bad {
					continue
				}
				info.unsat = true
				f := Finding{
					Class:    ClassUnreachable,
					Severity: SeverityWarning,
					Source:   src.pol.Source,
					Subject:  info.st.Subject,
					Line:     info.set.Line,
					Label:    info.label(),
					Stmt:     info.si,
					Set:      info.gi,
				}
				switch {
				case onAction:
					f.Deletable = true
					f.Message = fmt.Sprintf("the action selector can never match (%s): the set is dead", reason)
				case info.isReq:
					f.Severity = SeverityError
					f.Message = fmt.Sprintf("requirement can never be satisfied (%s): every request it applies to is denied", reason)
				default:
					f.Deletable = true
					f.Message = fmt.Sprintf("grant can never be satisfied (%s): it never permits anything", reason)
				}
				a.add(f)
			}
		}
	}
}

// shadows flags grants an earlier grant in the same subject chain
// already decides: every request the later grant matches is permitted
// by the earlier one, so the later grant never changes a decision.
func (a *analyzer) shadows() {
	for _, src := range a.srcs {
		for j, st := range src.pol.Statements {
			chain := src.c.ApplicableTo(st.Subject)
			for _, info := range src.sets[j] {
				if info.isReq || info.unsat {
					continue
				}
				if by := src.shadowedBy(chain, info, j); by != nil {
					a.add(Finding{
						Class:     ClassShadow,
						Severity:  SeverityWarning,
						Source:    src.pol.Source,
						Subject:   info.st.Subject,
						Line:      info.set.Line,
						Label:     info.label(),
						Stmt:      info.si,
						Set:       info.gi,
						Related:   by.label(),
						Deletable: true,
						Message: fmt.Sprintf("shadowed by earlier grant %s: every request this set matches is already permitted by it",
							by.label()),
					})
				}
			}
		}
	}
}

// shadowedBy finds the first earlier grant in the chain that covers
// info: its action selector admits every action info admits, and its
// constraints are implied by info's.
func (src *srcInfo) shadowedBy(chain []*policy.Statement, info *setInfo, j int) *setInfo {
	for _, st1 := range chain {
		i, ok := src.stmtIdx[st1]
		if !ok {
			continue
		}
		for g1, cand := range src.sets[i] {
			if i > j || (i == j && g1 >= info.gi) {
				continue
			}
			if cand.isReq || cand.unsat {
				continue
			}
			if !actionCovers(cand, info) {
				continue
			}
			if covered(cand, info) {
				return cand
			}
		}
	}
	return nil
}

// actionCovers reports that every request matching sub's action
// selector also matches sup's — needed so deleting sub cannot flip a
// decision from applicable to default deny.
func actionCovers(sup, sub *setInfo) bool {
	c1 := sup.fold[policy.AttrAction]
	if c1 == nil {
		return true
	}
	return implied(c1, map[string]*cons{policy.AttrAction: sub.fold[policy.AttrAction]})
}

// covered reports that every request satisfying sub satisfies sup.
func covered(sup, sub *setInfo) bool {
	for _, attr := range sup.order {
		if !implied(sup.fold[attr], sub.fold) {
			return false
		}
	}
	return true
}

// coverage flags actions from the registry that no statement in any
// source mentions: requests for them fall to default deny, which is
// often intent but worth surfacing.
func (a *analyzer) coverage() {
	if len(a.opts.Actions) == 0 {
		return
	}
	covered := make(map[string]bool)
	wildcard := false
	for _, src := range a.srcs {
		for _, infos := range src.sets {
			for _, info := range infos {
				c := info.fold[policy.AttrAction]
				if c == nil || !c.hasEq {
					// No equality selector: the set applies to any action
					// its negative clauses admit — count it as covering.
					wildcard = true
					continue
				}
				for _, t := range c.eq {
					if t.self {
						wildcard = true
						continue
					}
					covered[t.s] = true
				}
			}
		}
	}
	if wildcard {
		return
	}
	for _, action := range a.opts.Actions {
		if covered[action] {
			continue
		}
		a.add(Finding{
			Class:    ClassCoverage,
			Severity: SeverityInfo,
			Stmt:     -1,
			Set:      -1,
			Message:  fmt.Sprintf("action %q is not mentioned by any policy statement: every request for it falls to default deny", action),
		})
	}
}

// sortFindings orders the report most-severe first, then by source,
// line and class, so output and JSON artifacts are deterministic.
func (a *analyzer) sortFindings() {
	sort.SliceStable(a.rep.Findings, func(i, j int) bool {
		x, y := a.rep.Findings[i], a.rep.Findings[j]
		if x.Severity != y.Severity {
			return x.Severity > y.Severity
		}
		if x.Source != y.Source {
			return x.Source < y.Source
		}
		if x.Line != y.Line {
			return x.Line < y.Line
		}
		if x.Class != y.Class {
			return x.Class < y.Class
		}
		return x.Message < y.Message
	})
}
