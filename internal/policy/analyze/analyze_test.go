package analyze_test

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"gridauth/internal/policy"
	"gridauth/internal/policy/analyze"
	"gridauth/internal/rsl"
	"gridauth/internal/workload"
)

func read(t *testing.T, file string) string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// The NFC workload policies (the paper's running example, VO plus local
// source) are semantically clean: any finding would be a false
// positive.
func TestWorkloadPoliciesClean(t *testing.T) {
	vo, err := workload.NFCPolicy(workload.NFCUsers(5, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	local, err := workload.NFCLocalPolicy()
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze.Analyze(policy.Compile(vo), policy.Compile(local))
	for _, f := range rep.Findings {
		t.Errorf("false positive on NFC workload: %s", f)
	}
	for _, gen := range []func(int) *policy.Policy{
		workload.ExactHeavyPolicy, workload.PrefixHeavyPolicy, workload.RequirementHeavyPolicy,
	} {
		pol := gen(64)
		rep := analyze.Analyze(policy.Compile(pol))
		for _, f := range rep.Findings {
			t.Errorf("false positive on %s: %s", pol.Source, f)
		}
	}
}

// TestP12Differential plants a literally duplicated grant in a P12
// workload policy: the analyzer must flag exactly the duplicate as
// shadowed, and deleting it must leave every decision unchanged over
// the P12 permit-path request set and the probing corpus.
func TestP12Differential(t *testing.T) {
	pol := workload.ExactHeavyPolicy(50)
	victim := pol.Statements[7]
	victim.Sets = append(victim.Sets, victim.Sets[0])

	rep := analyze.Analyze(policy.Compile(pol))
	shadows := rep.ByClass(analyze.ClassShadow)
	if len(shadows) != 1 {
		t.Fatalf("got %d shadow findings, want 1: %v", len(shadows), rep.Findings)
	}
	f := shadows[0]
	if f.Subject != victim.Subject || f.Set != 1 || !f.Deletable {
		t.Fatalf("wrong shadow finding: %+v", f)
	}

	tomb := analyze.Tombstone(pol, f.Stmt, f.Set)
	reqs := append(workload.P12Requests(pol, 200), analyze.GenRequests(pol)...)
	cBefore, cAfter := policy.Compile(pol), policy.Compile(tomb)
	for i := range reqs {
		req := &reqs[i]
		before, after := pol.Evaluate(req), tomb.Evaluate(req)
		if got := cBefore.Evaluate(req); got != before {
			t.Fatalf("compiled/interpreted divergence before deletion: %+v vs %+v", got, before)
		}
		if got := cAfter.Evaluate(req); got != after {
			t.Fatalf("compiled/interpreted divergence after deletion: %+v vs %+v", got, after)
		}
		if !analyze.DecisionsEquivalent(req, before, after, f.Label) {
			t.Fatalf("deleting shadowed %s changed a decision:\nreq:    %+v\nbefore: %+v\nafter:  %+v",
				f.Label, req, before, after)
		}
	}
}

// DecisionsEquivalent must reject a deletion that actually changes
// semantics — otherwise the differential harness proves nothing.
func TestDecisionsEquivalentRejectsRealDeletion(t *testing.T) {
	pol := policy.MustParse(read(t, "testdata/fig3.policy"), "VO:NFC")
	// Kate's cancel grant is live: statement 2, set 1.
	tomb := analyze.Tombstone(pol, 2, 1)
	req := &policy.Request{
		Subject: "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey",
		Action:  policy.ActionCancel,
		Spec:    mustSpec(t, "&(jobtag=NFC)"),
	}
	before, after := pol.Evaluate(req), tomb.Evaluate(req)
	if !before.Allowed || after.Allowed {
		t.Fatalf("test premise broken: before=%+v after=%+v", before, after)
	}
	label := "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey#1"
	if analyze.DecisionsEquivalent(req, before, after, label) {
		t.Fatal("DecisionsEquivalent accepted deleting a live grant")
	}
}

func mustSpec(t *testing.T, s string) *rsl.Spec {
	t.Helper()
	spec, err := rsl.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSeverity(t *testing.T) {
	for _, s := range []analyze.Severity{analyze.SeverityInfo, analyze.SeverityWarning, analyze.SeverityError} {
		got, err := analyze.ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := analyze.ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity accepted an unknown name")
	}
	b, err := json.Marshal(analyze.Finding{Severity: analyze.SeverityError, Message: "m"})
	if err != nil || !strings.Contains(string(b), `"severity":"error"`) {
		t.Errorf("finding JSON: %s, %v", b, err)
	}
	var f analyze.Finding
	if err := json.Unmarshal(b, &f); err != nil || f.Severity != analyze.SeverityError {
		t.Errorf("round-trip: %+v, %v", f, err)
	}
}

func TestReportHelpers(t *testing.T) {
	pol := policy.MustParse(read(t, "testdata/unreachable.policy"), "u")
	rep := analyze.Analyze(policy.Compile(pol))
	if rep.Max() != analyze.SeverityError {
		t.Errorf("Max = %v, want error", rep.Max())
	}
	if rep.Count(analyze.SeverityError) == 0 || rep.Count(analyze.SeverityInfo) < rep.Count(analyze.SeverityError) {
		t.Errorf("Count inconsistent: info=%d error=%d", rep.Count(analyze.SeverityInfo), rep.Count(analyze.SeverityError))
	}
	if len(rep.ByClass(analyze.ClassUnreachable)) == 0 {
		t.Error("no unreachable findings on the unreachable fixture")
	}
	empty := analyze.Analyze(nil)
	if len(empty.Findings) != 0 || empty.Max() != 0 {
		t.Errorf("nil source not clean: %+v", empty)
	}
}

// Findings carry the source line of the set they flag (satellite:
// positions threaded through policy.Parse).
func TestFindingPositions(t *testing.T) {
	rep := analyze.Analyze(policy.Compile(policy.MustParse(read(t, "testdata/unreachable.policy"), "u")))
	for _, f := range rep.Findings {
		if f.Line <= 0 {
			t.Errorf("finding without a line: %s", f)
		}
	}
}
