package analyze

import (
	"fmt"
	"strings"

	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

// The conflict pass checks the community-vs-local tension the paper
// centres on: under the core combiners (require-all-permit,
// deny-overrides) a local Deny always beats a community Permit, so a
// community grant whose every request the local policy provably denies
// is dead on arrival — the VO believes it granted something the site
// never honours. Two provable shapes:
//
//  1. A local requirement that applies to the grant's whole subject
//     cone and whose conjunction is jointly unsatisfiable with the
//     grant: every community-permitted request violates it.
//  2. Every local grant that could co-apply is jointly unsatisfiable
//     with (or action-disjoint from) the community grant, while at
//     least one always action-matches, so the local source answers
//     Deny (not an abstention) for every community-permitted request.

// conflicts runs the cross-source pass. Sources named by
// Options.LocalSources (default: labels containing "local") are the
// resource owner's; the rest are community policies.
func (a *analyzer) conflicts() {
	locals, communities := a.partition()
	if len(locals) == 0 || len(communities) == 0 {
		return
	}
	for _, cs := range communities {
		for _, infos := range cs.sets {
			for _, g := range infos {
				if g.isReq || g.unsat {
					continue
				}
				for _, ls := range locals {
					if f, ok := conflictWith(g, cs, ls); ok {
						a.add(f)
					}
				}
			}
		}
	}
}

// partition splits the analyzed sources into local and community sets.
func (a *analyzer) partition() (locals, communities []*srcInfo) {
	isLocal := func(label string) bool {
		if len(a.opts.LocalSources) > 0 {
			for _, l := range a.opts.LocalSources {
				if l == label {
					return true
				}
			}
			return false
		}
		return strings.Contains(strings.ToLower(label), "local")
	}
	for _, s := range a.srcs {
		if isLocal(s.pol.Source) {
			locals = append(locals, s)
		} else {
			communities = append(communities, s)
		}
	}
	return locals, communities
}

// conflictWith proves (or declines to prove) that the local source ls
// denies every request the community grant g permits.
func conflictWith(g *setInfo, cs, ls *srcInfo) (Finding, bool) {
	subject := g.st.Subject
	mk := func(related *setInfo, msg string) Finding {
		f := Finding{
			Class:    ClassConflict,
			Severity: SeverityError,
			Source:   cs.pol.Source,
			Subject:  subject,
			Line:     g.set.Line,
			Label:    g.label(),
			Stmt:     g.si,
			Set:      g.gi,
			Message:  msg,
		}
		if related != nil {
			f.Related = related.label()
		}
		return f
	}

	// Shape 1: an always-firing, never-satisfiable local requirement.
	for i, lst := range ls.pol.Statements {
		if !subject.HasPrefix(lst.Subject) {
			continue // does not constrain the whole subject cone
		}
		for _, r := range ls.sets[i] {
			if !r.isReq {
				continue
			}
			if !actionCovers(r, g) {
				continue // the requirement may not fire on every grant action
			}
			if reason, bad := jointlyUnsat(g, r); bad {
				return mk(r, fmt.Sprintf(
					"community grant can never take effect: every request it permits violates local requirement %s of source %q (%s); under require-all-permit and deny-overrides combination the local deny wins",
					r.label(), ls.pol.Source, reason)), true
			}
		}
	}

	// Shape 2: the local source always answers Deny because no local
	// grant can co-permit, while at least one always action-matches.
	anchored := false
	for i, lst := range ls.pol.Statements {
		if !comparableDN(lst.Subject, subject) {
			continue // never applies to an identity the grant covers
		}
		wholeCone := subject.HasPrefix(lst.Subject)
		for _, l := range ls.sets[i] {
			if l.isReq {
				continue
			}
			if actionDisjoint(g, l) {
				continue // never applicable to a community-permitted request
			}
			if _, bad := jointlyUnsat(g, l); !bad {
				return Finding{}, false // l might permit some request: no claim
			}
			if wholeCone && actionCovers(l, g) {
				anchored = true // l sees (and denies) every such request
			}
		}
	}
	if anchored {
		return mk(nil, fmt.Sprintf(
			"community grant permits requests local source %q always denies: every local grant that could apply is contradictory with it; under require-all-permit and deny-overrides combination the local deny wins",
			ls.pol.Source)), true
	}
	return Finding{}, false
}

// jointlyUnsat folds the non-action clauses of both sets together and
// looks for a contradiction: no single request can satisfy both.
func jointlyUnsat(a, b *setInfo) (string, bool) {
	clauses := make([]*rsl.Relation, 0, len(a.set.Clauses)+len(b.set.Clauses))
	clauses = append(clauses, a.set.Clauses...)
	clauses = append(clauses, b.set.Clauses...)
	m, order := foldClauses(clauses, true)
	_, reason, _, bad := unsatisfiable(m, order)
	return reason, bad
}

// actionDisjoint reports that no action can match both sets' selectors:
// both carry pure-literal equality selectors with an empty intersection.
func actionDisjoint(a, b *setInfo) bool {
	ca, cb := a.fold[policy.AttrAction], b.fold[policy.AttrAction]
	if ca == nil || cb == nil || !ca.hasEq || !cb.hasEq || !ca.eqExact || !cb.eqExact {
		return false
	}
	for _, t := range ca.eq {
		if t.self {
			return false
		}
		if containsToken(cb.eq, t) {
			return false
		}
	}
	for _, t := range cb.eq {
		if t.self {
			return false
		}
	}
	return true
}

// comparableDN reports that the two subject prefixes share a cone: one
// is a prefix of (or equal to) the other.
func comparableDN(a, b gsi.DN) bool {
	return a.HasPrefix(b) || b.HasPrefix(a)
}
