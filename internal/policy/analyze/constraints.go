package analyze

import (
	"fmt"
	"strconv"
	"strings"

	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

// The analyzer reasons about assertion sets through a per-attribute
// normal form ("cons") folded from the set's clauses. Every claim it
// derives — a conjunction is unsatisfiable, one conjunction implies
// another — must hold under the evaluator's exact semantics
// (clauseSatisfied): `= NULL` means absent, `!= NULL` means present and
// non-empty, ordering clauses are limits that absent attributes pass,
// and comparisons are numeric when both sides parse as numbers and
// byte-wise otherwise. Where the semantics admit ambiguity (the `self`
// value resolves to the requesting identity, mixed numeric/string
// bounds), the fold tracks the uncertainty and the checks decline to
// claim anything — a false "could not prove" is always safe, a false
// "proved" never is.

// token is one policy-side value after resolution: either the literal
// string the evaluator compares against, or the special `self` marker
// whose runtime value is the requesting identity. Two equal tokens
// always evaluate to the same string on the same request, so syntactic
// subset arguments carry over to runtime without knowing the subject.
type token struct {
	self bool
	s    string
}

func (t token) equal(o token) bool { return t.self == o.self && (t.self || t.s == o.s) }

func (t token) String() string {
	if t.self {
		return policy.ValueSelf
	}
	return t.s
}

func containsToken(ts []token, t token) bool {
	for _, o := range ts {
		if o.equal(t) {
			return true
		}
	}
	return false
}

func hasSelfToken(ts []token) bool {
	for _, t := range ts {
		if t.self {
			return true
		}
	}
	return false
}

// bound is one ordering limit on an attribute.
type bound struct {
	op  rsl.Op
	val token
}

func (b bound) upper() bool  { return b.op == rsl.OpLt || b.op == rsl.OpLe }
func (b bound) strict() bool { return b.op == rsl.OpLt || b.op == rsl.OpGt }

// cons is the folded constraint an assertion set places on one
// attribute.
type cons struct {
	attr   string
	always bool // synthesized on every request (action, jobowner)

	hasEq   bool
	eq      []token // intersection of all (attr = v ...) value lists
	eqExact bool    // intersection is provably the exact allowed set
	eqNull  bool    // (attr = NULL): the attribute must be absent
	neqNull bool    // (attr != NULL): present with every value non-empty
	neq     []token // union of forbidden values
	bounds  []bound
	deadOp  bool // clause operator the evaluator never satisfies
}

// alwaysPresent lists attributes the evaluator synthesizes on every
// request, so `= NULL` can never match and limits always apply.
func alwaysPresent(attr string) bool {
	return attr == policy.AttrAction || attr == policy.AttrJobowner
}

// resolveValues maps clause values to tokens the way the evaluator
// resolves them: NULL is reported separately, `self` becomes a self
// token, and variables resolve against the empty substitution.
func resolveValues(vals []rsl.Value) (toks []token, sawNull bool) {
	for _, v := range vals {
		switch v.Literal {
		case policy.ValueNull:
			sawNull = true
		case policy.ValueSelf:
			toks = append(toks, token{self: true})
		default:
			toks = append(toks, token{s: v.Resolve(nil)})
		}
	}
	return toks, sawNull
}

// foldClauses normalizes clauses into per-attribute constraints, in
// first-appearance order. skipAction drops action-selector clauses so
// two sets' non-action conjunctions can be folded together.
func foldClauses(clauses []*rsl.Relation, skipAction bool) (map[string]*cons, []string) {
	m := make(map[string]*cons)
	var order []string
	for _, cl := range clauses {
		if skipAction && cl.Attribute == policy.AttrAction {
			continue
		}
		c := m[cl.Attribute]
		if c == nil {
			c = &cons{attr: cl.Attribute, always: alwaysPresent(cl.Attribute), eqExact: true}
			m[cl.Attribute] = c
			order = append(order, cl.Attribute)
		}
		toks, sawNull := resolveValues(cl.Values)
		switch cl.Op {
		case rsl.OpEq:
			if sawNull && len(toks) == 0 {
				c.eqNull = true
				continue
			}
			if !c.hasEq {
				c.hasEq = true
				c.eq = toks
				continue
			}
			c.eq = c.intersect(c.eq, toks)
		case rsl.OpNeq:
			if sawNull && len(toks) == 0 {
				c.neqNull = true
				continue
			}
			c.neq = append(c.neq, toks...)
		case rsl.OpLt, rsl.OpLe, rsl.OpGt, rsl.OpGe:
			for _, t := range toks {
				c.bounds = append(c.bounds, bound{op: cl.Op, val: t})
			}
		default:
			// The evaluator returns false for any other operator, so the
			// whole conjunction can never be satisfied.
			c.deadOp = true
		}
	}
	return m, order
}

// intersect narrows the allowed-value set by another equality clause's
// value list. A drop that involves `self` on either side may be wrong at
// runtime (the subject could equal the literal), so it voids exactness.
func (c *cons) intersect(a, b []token) []token {
	var out []token
	selfA, selfB := hasSelfToken(a), hasSelfToken(b)
	for _, t := range a {
		if containsToken(b, t) {
			out = append(out, t)
			continue
		}
		if t.self || selfB {
			c.eqExact = false
		}
	}
	for _, t := range b {
		if !containsToken(a, t) && (t.self || selfA) {
			c.eqExact = false
		}
	}
	return out
}

// provablyFails reports that the literal value t can never pass the
// constraint's own negative clauses and limits.
func provablyFails(t token, c *cons) bool {
	if t.self {
		return false
	}
	if c.neqNull && t.s == "" {
		return true
	}
	for _, f := range c.neq {
		if !f.self && f.s == t.s {
			return true
		}
	}
	for _, b := range c.bounds {
		if !b.val.self && !rsl.Compare(t.s, b.op, b.val.s) {
			return true
		}
	}
	return false
}

// consUnsat reports a proof that no request value assignment satisfies
// the constraint on this one attribute.
func consUnsat(c *cons) (string, bool) {
	if c.deadOp {
		return fmt.Sprintf("a clause on %q uses an operator the evaluator never satisfies", c.attr), true
	}
	if c.eqNull {
		switch {
		case c.always:
			return fmt.Sprintf("(%s = NULL) can never hold: %s is present on every request", c.attr, c.attr), true
		case c.hasEq:
			return fmt.Sprintf("%s is required to be both absent (= NULL) and equal to a value", c.attr), true
		case c.neqNull:
			return fmt.Sprintf("%s is required to be both absent (= NULL) and present (!= NULL)", c.attr), true
		}
		return "", false // absence is consistent with != and limit clauses
	}
	if c.hasEq {
		if len(c.eq) == 0 {
			if c.eqExact {
				return fmt.Sprintf("equality clauses on %s admit no common value", c.attr), true
			}
			return "", false
		}
		if c.eqExact {
			all := true
			for _, t := range c.eq {
				if !provablyFails(t, c) {
					all = false
					break
				}
			}
			if all {
				return fmt.Sprintf("every permitted value of %s violates the set's other %s clauses", c.attr, c.attr), true
			}
		}
		return "", false
	}
	// Without an equality clause, limits only bite when presence is
	// forced (an absent attribute passes every limit).
	if (c.always || c.neqNull) && boundsEmpty(c.bounds) {
		return fmt.Sprintf("limits on %s define an empty range", c.attr), true
	}
	return "", false
}

// boundsEmpty reports that some lower/upper limit pair excludes every
// value under both the numeric and the byte-wise string reading.
func boundsEmpty(bs []bound) bool {
	for _, lo := range bs {
		if lo.upper() || lo.val.self {
			continue
		}
		for _, hi := range bs {
			if !hi.upper() || hi.val.self {
				continue
			}
			if pairEmpty(lo, hi) {
				return true
			}
		}
	}
	return false
}

func pairEmpty(lo, hi bound) bool {
	strictEither := lo.strict() || hi.strict()
	strEmpty := lo.val.s > hi.val.s || (lo.val.s == hi.val.s && strictEither)
	ln, lerr := strconv.ParseFloat(strings.TrimSpace(lo.val.s), 64)
	hn, herr := strconv.ParseFloat(strings.TrimSpace(hi.val.s), 64)
	switch {
	case lerr == nil && herr == nil:
		// Numeric values take the numeric path, everything else the
		// string path: both must be empty.
		numEmpty := ln > hn || (ln == hn && strictEither)
		return numEmpty && strEmpty
	case lerr != nil && herr != nil:
		// Both bounds non-numeric: every comparison is byte-wise.
		return strEmpty
	default:
		return false // mixed numeric/string bounds: no claim
	}
}

// unsatisfiable scans a folded conjunction for a contradiction,
// reporting the offending attribute. onAction distinguishes a dead
// action selector (the set never applies at all) from a set that
// applies but can never be satisfied.
func unsatisfiable(m map[string]*cons, order []string) (attr, reason string, onAction, ok bool) {
	for _, a := range order {
		if msg, bad := consUnsat(m[a]); bad {
			return a, msg, a == policy.AttrAction, true
		}
	}
	return "", "", false, false
}

// implied reports that every request satisfying all of sub's
// constraints necessarily satisfies the single constraint c1.
// Conservative: false means "could not prove", never "does not hold".
func implied(c1 *cons, sub map[string]*cons) bool {
	if c1 == nil {
		return true
	}
	c2 := sub[c1.attr]
	if c1.deadOp || (c2 != nil && c2.deadOp) {
		return false // callers exclude unsatisfiable sets; stay safe
	}
	absent := c2 != nil && c2.eqNull && !c2.hasEq
	if c1.eqNull && !absent {
		return false
	}
	if c1.hasEq {
		if c2 == nil || !c2.hasEq || !c2.eqExact {
			return false
		}
		for _, t := range c2.eq {
			if !containsToken(c1.eq, t) {
				return false
			}
		}
	}
	if c1.neqNull && !impliedPresent(c2) {
		return false
	}
	if !absent {
		for _, f := range c1.neq {
			if !excludes(c2, f) {
				return false
			}
		}
		for _, b := range c1.bounds {
			if b.val.self || !boundImplied(c2, b) {
				return false
			}
		}
	}
	return true
}

// impliedPresent reports that c2 forces the attribute to be present
// with every value non-empty, which is what (attr != NULL) demands.
func impliedPresent(c2 *cons) bool {
	if c2 == nil {
		return false
	}
	if c2.neqNull {
		return true
	}
	if c2.hasEq && c2.eqExact && len(c2.eq) > 0 {
		for _, t := range c2.eq {
			if t.self || t.s == "" {
				return false
			}
		}
		return true
	}
	return false
}

// excludes reports that no value allowed by c2 can equal the forbidden
// token f.
func excludes(c2 *cons, f token) bool {
	if c2 == nil {
		return false
	}
	for _, g := range c2.neq {
		if g.equal(f) {
			return true
		}
	}
	if !f.self && f.s == "" && c2.neqNull {
		return true
	}
	if c2.hasEq && c2.eqExact {
		for _, t := range c2.eq {
			if t.equal(f) || t.self != f.self {
				return false // equal, or self-vs-literal could coincide
			}
		}
		return true
	}
	return false
}

// boundImplied reports that c2 guarantees every present value passes
// the limit b1.
func boundImplied(c2 *cons, b1 bound) bool {
	if c2 == nil {
		return false
	}
	if c2.hasEq && c2.eqExact {
		for _, t := range c2.eq {
			if t.self || !rsl.Compare(t.s, b1.op, b1.val.s) {
				return false
			}
		}
		return len(c2.eq) > 0
	}
	for _, b2 := range c2.bounds {
		if b2.val.self || b2.upper() != b1.upper() {
			continue
		}
		if tighter(b2, b1) {
			return true
		}
	}
	return false
}

// tighter reports that satisfying b2 guarantees satisfying the
// same-direction limit b1, under both the numeric and the byte-wise
// string reading of the evaluator's Compare.
func tighter(b2, b1 bound) bool {
	okStrict := !b1.strict() || b2.strict()
	x2, x1 := b2.val.s, b1.val.s
	n2, err2 := strconv.ParseFloat(strings.TrimSpace(x2), 64)
	n1, err1 := strconv.ParseFloat(strings.TrimSpace(x1), 64)
	if (err2 == nil) != (err1 == nil) {
		return false // mixed numeric/string bounds: no claim
	}
	numeric := err2 == nil
	if b1.upper() {
		strOK := x2 < x1 || (x2 == x1 && okStrict)
		if !numeric {
			return strOK
		}
		return strOK && (n2 < n1 || (n2 == n1 && okStrict))
	}
	strOK := x2 > x1 || (x2 == x1 && okStrict)
	if !numeric {
		return strOK
	}
	return strOK && (n2 > n1 || (n2 == n1 && okStrict))
}
