package analyze

import (
	"fmt"
	"strconv"
	"strings"

	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

// This file is the analyzer's correctness contract: every finding
// marked Deletable claims its assertion set can be removed without
// changing ANY decision. Tombstone performs the removal, GenRequests
// builds a probing request set, and DecisionsEquivalent checks the
// before/after decisions — byte-identical for permits, and for denials
// identical up to the deleted set's own reason entries. The golden
// tests and FuzzAnalyze drive all three.

// Tombstone returns a copy of pol with the gi-th assertion set of the
// si-th statement replaced by a set whose action selector is statically
// unsatisfiable — (action = a)(action = b) can never both hold for the
// single action value of a request — so both evaluators skip it
// entirely. Replacing instead of removing keeps every other set's
// "subject#index" label stable, which is what makes decision reasons
// comparable before and after deletion.
func Tombstone(pol *policy.Policy, si, gi int) *policy.Policy {
	out := &policy.Policy{Source: pol.Source, Statements: append([]*policy.Statement(nil), pol.Statements...)}
	st := *out.Statements[si]
	st.Sets = append([]*policy.AssertionSet(nil), st.Sets...)
	st.Sets[gi] = &policy.AssertionSet{
		Clauses: []*rsl.Relation{
			{Attribute: policy.AttrAction, Op: rsl.OpEq, Values: []rsl.Value{rsl.Lit("tombstone-a")}},
			{Attribute: policy.AttrAction, Op: rsl.OpEq, Values: []rsl.Value{rsl.Lit("tombstone-b")}},
		},
		Line: st.Sets[gi].Line,
	}
	out.Statements[si] = &st
	return out
}

// DecisionsEquivalent reports whether after — the decision of the same
// request against a policy with the set labelled label tombstoned — is
// the deletion-equivalent of before. Permits must be byte-identical.
// A denial may lose exactly the deleted set's own "label: ..." entries
// from its "no grant satisfied" enumeration; if the deleted set was the
// only applicable grant, the decision must fall to the exact default
// deny. Anything else is a semantic change and fails.
//
// The entry comparison splits on "; ", so callers (the fuzz target)
// must skip policies whose unparsed text itself contains "; ".
func DecisionsEquivalent(req *policy.Request, before, after policy.Decision, label string) bool {
	if before == after {
		return true
	}
	if before.Allowed || after.Allowed || after.GrantedBy != "" {
		return false
	}
	if before.Source != after.Source {
		return false
	}
	const prefix = "no grant satisfied: "
	if !strings.HasPrefix(before.Reason, prefix) {
		return false
	}
	var kept []string
	for _, entry := range strings.Split(before.Reason[len(prefix):], "; ") {
		if !strings.HasPrefix(entry, label+": ") {
			kept = append(kept, entry)
		}
	}
	if len(kept) == 0 {
		// The deleted set was the only applicable grant: the policy now
		// abstains with the default deny.
		want := fmt.Sprintf("no policy statement grants %q to %s (default deny)", req.Action, req.Subject)
		return !after.Applicable && after.Reason == want
	}
	return after.Applicable && after.Reason == prefix+strings.Join(kept, "; ")
}

// GenRequests builds a deterministic request set probing every
// statement of the given policies: for each assertion set it emits
// satisfying, near-miss (one attribute dropped or corrupted) and
// mismatching variants, from the statement's own subject and a
// synthetic member below it, across the policies' action vocabulary.
func GenRequests(pols ...*policy.Policy) []policy.Request {
	const maxRequests = 4096
	var (
		reqs    []policy.Request
		actions []string
		seen    = map[string]bool{}
	)
	addAction := func(a string) {
		if !seen[a] {
			seen[a] = true
			actions = append(actions, a)
		}
	}
	for _, p := range pols {
		for _, st := range p.Statements {
			for _, s := range st.Sets {
				for _, a := range s.Actions() {
					addAction(a)
				}
			}
		}
	}
	addAction(policy.ActionStart)
	addAction(policy.ActionCancel)
	addAction("zz-unmapped")

	for _, p := range pols {
		for _, st := range p.Statements {
			subjects := []gsi.DN{st.Subject, st.Subject + "/CN=probe"}
			for _, s := range st.Sets {
				acts := s.Actions()
				if len(acts) == 0 {
					acts = actions
				} else {
					acts = append(append([]string(nil), acts...), "zz-unmapped")
				}
				for _, subj := range subjects {
					specs, owners := specVariants(s, subj)
					for _, act := range acts {
						for _, spec := range specs {
							for _, owner := range owners {
								reqs = append(reqs, policy.Request{Subject: subj, Action: act, JobOwner: owner, Spec: spec})
								if len(reqs) >= maxRequests {
									return reqs
								}
							}
						}
					}
				}
			}
		}
	}
	return reqs
}

// specVariants builds the job-description probes for one assertion set:
// nil, a spec satisfying every clause, and per-attribute near-misses.
// It also returns the job-owner values worth probing.
func specVariants(s *policy.AssertionSet, subj gsi.DN) ([]*rsl.Spec, []gsi.DN) {
	sat := rsl.NewSpec()
	owners := []gsi.DN{"", subj, "/O=Example/CN=other"}
	var attrs []string
	for _, cl := range s.Clauses {
		if cl.Attribute == policy.AttrAction {
			continue
		}
		if cl.Attribute == policy.AttrJobowner {
			for _, v := range cl.Values {
				if v.Literal != policy.ValueNull && v.Literal != policy.ValueSelf {
					owners = append(owners, gsi.DN(v.Resolve(nil)))
				}
			}
			continue
		}
		if sat.Has(cl.Attribute) {
			continue
		}
		if v, ok := satisfyingValue(cl, subj); ok {
			sat.Set(cl.Attribute, v)
		}
		attrs = append(attrs, cl.Attribute)
	}
	specs := []*rsl.Spec{nil, sat}
	if len(attrs) > 4 {
		attrs = attrs[:4]
	}
	for _, a := range attrs {
		drop := sat.Clone()
		drop.Delete(a)
		bad := sat.Clone()
		bad.Set(a, "zz-violates")
		specs = append(specs, drop, bad)
	}
	if len(owners) > 4 {
		owners = owners[:4]
	}
	return specs, owners
}

// satisfyingValue picks a value for the clause's attribute that should
// satisfy the clause in isolation; ok=false means "leave the attribute
// out" (e.g. for `= NULL`).
func satisfyingValue(cl *rsl.Relation, subj gsi.DN) (string, bool) {
	var first string
	sawNull := false
	for _, v := range cl.Values {
		switch v.Literal {
		case policy.ValueNull:
			sawNull = true
		case policy.ValueSelf:
			if first == "" {
				first = string(subj)
			}
		default:
			if first == "" {
				first = v.Resolve(nil)
			}
		}
	}
	switch cl.Op {
	case rsl.OpEq:
		if sawNull && first == "" {
			return "", false // (attr = NULL): absent satisfies
		}
		return first, true
	case rsl.OpNeq:
		if sawNull && first == "" {
			return "present", true // (attr != NULL): any non-empty value
		}
		return first + "-free", true // not among the forbidden values
	case rsl.OpLt, rsl.OpLe, rsl.OpGt, rsl.OpGe:
		if n, err := strconv.ParseFloat(strings.TrimSpace(first), 64); err == nil {
			switch cl.Op {
			case rsl.OpLt:
				return strconv.FormatFloat(n-1, 'g', -1, 64), true
			case rsl.OpGt:
				return strconv.FormatFloat(n+1, 'g', -1, 64), true
			default:
				return first, true
			}
		}
		switch cl.Op {
		case rsl.OpLt:
			return "", true // "" byte-compares below any non-empty value
		case rsl.OpGt:
			return first + "~", true
		default:
			return first, true
		}
	default:
		return first, true
	}
}
