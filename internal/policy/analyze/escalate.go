package analyze

import (
	"fmt"
	"strings"

	"gridauth/internal/gsi"
	"gridauth/internal/policy"
)

// The escalation pass examines management grants — assertion sets that
// authorize one of Options.ManagementActions (voadmin-style grant/
// revoke writes). The grantee attribute scopes whose rights such a
// write may change. Three direct defects are errors:
//
//   - an unscoped management grant (no grantee equality clause): the
//     subject can grant rights to anyone, including itself;
//   - (grantee = self): the subject extends its own rights by
//     construction;
//   - a grantee inside the subject's own prefix chain: the subject (or
//     a member acting under the group statement) can widen rights it
//     already inherits or exercises.
//
// Beyond the direct cases the pass runs reachability over the grant
// graph (edges subject → grantee): a subject that can reach its own
// prefix chain in two or more hops can collude its way back to wider
// rights, which is reported as a warning with the path.

// mgmtEdge is one grant-graph edge: the statement subject may extend
// the rights of the grantee prefix.
type mgmtEdge struct {
	from gsi.DN
	to   gsi.DN
}

// escalation finds management grants whose grantee scope reaches back
// into the granting subject's own prefix chain.
func (a *analyzer) escalation() {
	var (
		edges   []mgmtEdge
		origins []*setInfo         // management sets, in source order
		direct  = map[gsi.DN]bool{} // subjects already flagged directly
	)
	mk := func(info *setInfo, src *srcInfo, sev Severity, msg string) Finding {
		return Finding{
			Class:    ClassEscalation,
			Severity: sev,
			Source:   src.pol.Source,
			Subject:  info.st.Subject,
			Line:     info.set.Line,
			Label:    info.label(),
			Stmt:     info.si,
			Set:      info.gi,
			Message:  msg,
		}
	}
	for _, src := range a.srcs {
		for _, infos := range src.sets {
			for _, info := range infos {
				verbs := a.managementVerbs(info)
				if len(verbs) == 0 || info.isReq || info.unsat {
					continue
				}
				origins = append(origins, info)
				grantee := info.fold[a.opts.GranteeAttr]
				if grantee == nil || !grantee.hasEq {
					direct[info.st.Subject] = true
					a.add(mk(info, src, SeverityError, fmt.Sprintf(
						"management grant for %s is not scoped by a (%s = ...) clause: the subject can extend any identity's rights, including its own",
						verbList(verbs), a.opts.GranteeAttr)))
					continue
				}
				for _, t := range grantee.eq {
					if t.self {
						direct[info.st.Subject] = true
						a.add(mk(info, src, SeverityError, fmt.Sprintf(
							"management grant for %s names (%s = self): the subject can extend its own rights",
							verbList(verbs), a.opts.GranteeAttr)))
						continue
					}
					to := gsi.DN(t.s)
					if comparableDN(info.st.Subject, to) {
						direct[info.st.Subject] = true
						a.add(mk(info, src, SeverityError, fmt.Sprintf(
							"management grant for %s targets %s, which is inside the subject's own prefix chain: the subject can widen rights it already holds or inherits",
							verbList(verbs), to)))
						continue
					}
					edges = append(edges, mgmtEdge{from: info.st.Subject, to: to})
				}
			}
		}
	}
	a.multiHop(origins, edges, direct)
}

// multiHop reports subjects that, while directly scoped away from
// themselves, can reach their own prefix chain through a chain of
// management grants (A grants B, B grants A's ancestor, ...).
func (a *analyzer) multiHop(origins []*setInfo, edges []mgmtEdge, direct map[gsi.DN]bool) {
	seen := map[gsi.DN]bool{}
	for _, origin := range origins {
		start := origin.st.Subject
		if direct[start] || seen[start] {
			continue
		}
		seen[start] = true
		if path := reachChain(start, edges); len(path) >= 3 {
			a.add(Finding{
				Class:    ClassEscalation,
				Severity: SeverityWarning,
				Source:   origin.src.pol.Source,
				Subject:  start,
				Line:     origin.set.Line,
				Label:    origin.label(),
				Stmt:     origin.si,
				Set:      origin.gi,
				Message: fmt.Sprintf(
					"subject can reach its own prefix chain through the grant graph (%s): colluding grantees can hand its rights back widened",
					strings.Join(path, " -> ")),
			})
		}
	}
}

// reachChain runs breadth-first search from start over the grant graph.
// An edge applies from node u when its granting subject shares a prefix
// cone with u (the grantor may be u, a member of u, or a group u sits
// under). It returns the node path start..X where X re-enters start's
// prefix chain after at least two hops, or nil.
func reachChain(start gsi.DN, edges []mgmtEdge) []string {
	type hop struct {
		node  gsi.DN
		prev  int // index into trail; -1 for start
		depth int
	}
	trail := []hop{{node: start, prev: -1}}
	visited := map[gsi.DN]bool{start: true}
	for i := 0; i < len(trail) && i < 1024; i++ {
		u := trail[i]
		for _, e := range edges {
			if !comparableDN(e.from, u.node) {
				continue
			}
			if u.depth+1 >= 2 && comparableDN(e.to, start) {
				// The cycle check runs before the visited skip: the node
				// that closes the loop is usually the (visited) start.
				path := []string{string(e.to)}
				for p := i; p >= 0; p = trail[p].prev {
					path = append([]string{string(trail[p].node)}, path...)
				}
				return path
			}
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			trail = append(trail, hop{node: e.to, prev: i, depth: u.depth + 1})
		}
	}
	return nil
}

// managementVerbs returns the management actions the set's literal
// action selector grants, or nil when it grants none (or has no
// literal selector — the pass does not chase wildcard grants).
func (a *analyzer) managementVerbs(info *setInfo) []string {
	c := info.fold[policy.AttrAction]
	if c == nil || !c.hasEq {
		return nil
	}
	var verbs []string
	for _, t := range c.eq {
		if t.self {
			continue
		}
		for _, m := range a.opts.ManagementActions {
			if t.s == m {
				verbs = append(verbs, m)
			}
		}
	}
	return verbs
}

func verbList(verbs []string) string {
	quoted := make([]string, len(verbs))
	for i, v := range verbs {
		quoted[i] = fmt.Sprintf("%q", v)
	}
	return strings.Join(quoted, "/")
}
