package analyze_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridauth/internal/policy"
	"gridauth/internal/policy/analyze"
)

// FuzzAnalyze feeds arbitrary policy text through the analyzer and
// holds it to its two contracts: it never panics, and every finding it
// marks Deletable really is — tombstoning the flagged set changes no
// decision (beyond the deleted label's own denial entries) on either
// the interpreted or the compiled evaluator, over the probing request
// corpus.
func FuzzAnalyze(f *testing.F) {
	seeds, err := filepath.Glob("testdata/*.policy")
	if err != nil {
		f.Fatal(err)
	}
	more, _ := filepath.Glob("testdata/*/*.policy")
	for _, file := range append(seeds, more...) {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("/O=G/CN=a:\n (action = grant)(grantee = self)\n")
	f.Add("/O=G/CN=a:\n &(action = start)(x = 1)(x = 2)\n (action != NULL)\n")

	f.Fuzz(func(t *testing.T, text string) {
		pol, err := policy.ParseString(text, "fuzz")
		if err != nil {
			t.Skip()
		}
		if len(pol.Statements) > 24 {
			t.Skip()
		}
		// DecisionsEquivalent splits deny reasons on "; "; a policy whose
		// own text round-trips that separator into a reason would make
		// the split ambiguous, so such inputs are out of contract.
		if strings.Contains(pol.Unparse(), "; ") {
			t.Skip()
		}
		rep := analyze.With(analyze.Options{
			Actions: []string{policy.ActionStart, policy.ActionCancel},
		}, policy.Compile(pol))

		var reqs []policy.Request
		for _, fd := range rep.Findings {
			if !fd.Deletable {
				continue
			}
			if reqs == nil {
				reqs = analyze.GenRequests(pol)
				if len(reqs) > 512 {
					reqs = reqs[:512]
				}
			}
			tomb := analyze.Tombstone(pol, fd.Stmt, fd.Set)
			cBefore, cAfter := policy.Compile(pol), policy.Compile(tomb)
			for i := range reqs {
				req := &reqs[i]
				before, after := pol.Evaluate(req), tomb.Evaluate(req)
				if got := cBefore.Evaluate(req); got != before {
					t.Fatalf("compiled/interpreted divergence: %+v vs %+v\nreq: %+v", got, before, req)
				}
				if got := cAfter.Evaluate(req); got != after {
					t.Fatalf("compiled/interpreted divergence after deletion: %+v vs %+v\nreq: %+v", got, after, req)
				}
				if !analyze.DecisionsEquivalent(req, before, after, fd.Label) {
					t.Fatalf("deleting %s (%s) changed a decision:\nreq:    %+v\nbefore: %+v\nafter:  %+v",
						fd.Label, fd.Class, req, before, after)
				}
			}
		}
	})
}
