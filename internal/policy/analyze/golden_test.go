package analyze_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"gridauth/internal/policy"
	"gridauth/internal/policy/analyze"
)

// The golden corpus reuses the internal/analysis/analysistest replay
// pattern for policy files: every fixture line may carry a
// `# want `+"`regex`"+` comment naming the finding the analyzer must
// report on that line, and a `# want-coverage a b c` directive lists
// the registry actions the coverage pass must flag. A fixture with no
// wants (fig3.policy) asserts zero findings. Directories group files
// that are analyzed together (the cross-source conflict fixtures);
// files whose name contains "local" become the local sources.

var wantRe = regexp.MustCompile("# want `([^`]+)`")

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

func TestGoldenFixtures(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch {
		case e.IsDir():
			sub, err := os.ReadDir(filepath.Join("testdata", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			var files []string
			for _, f := range sub {
				if strings.HasSuffix(f.Name(), ".policy") {
					files = append(files, filepath.Join("testdata", e.Name(), f.Name()))
				}
			}
			t.Run(e.Name(), func(t *testing.T) { runGolden(t, files) })
		case strings.HasSuffix(e.Name(), ".policy"):
			file := filepath.Join("testdata", e.Name())
			t.Run(strings.TrimSuffix(e.Name(), ".policy"), func(t *testing.T) { runGolden(t, []string{file}) })
		}
	}
}

func runGolden(t *testing.T, files []string) {
	var (
		compiled  []*policy.Compiled
		pols      = map[string]*policy.Policy{}
		locals    []string
		wants     []*expectation
		wantCover []string
	)
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		source := filepath.ToSlash(file)
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				rx, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern: %v", source, i+1, err)
				}
				wants = append(wants, &expectation{file: source, line: i + 1, rx: rx, raw: m[1]})
			}
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "# want-coverage "); ok {
				wantCover = append(wantCover, strings.Fields(rest)...)
			}
		}
		pol, err := policy.ParseString(string(data), source)
		if err != nil {
			t.Fatalf("%s: %v", source, err)
		}
		pols[source] = pol
		compiled = append(compiled, policy.Compile(pol))
		if strings.Contains(filepath.Base(file), "local") {
			locals = append(locals, source)
		}
	}

	opts := analyze.Options{LocalSources: locals}
	if len(wantCover) > 0 {
		opts.Actions = []string{policy.ActionStart, policy.ActionCancel, policy.ActionInformation, policy.ActionSignal}
	}
	rep := analyze.With(opts, compiled...)

	var coverage []analyze.Finding
	for _, f := range rep.Findings {
		if f.Class == analyze.ClassCoverage {
			coverage = append(coverage, f)
			continue
		}
		if !matchWant(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want `%s`", w.file, w.line, w.raw)
		}
	}
	checkCoverage(t, wantCover, coverage)
	checkDeletable(t, rep, pols)
}

func matchWant(wants []*expectation, f analyze.Finding) bool {
	text := fmt.Sprintf("%s: %s", f.Class, f.Message)
	for _, w := range wants {
		if w.matched || w.file != f.Source || w.line != f.Line {
			continue
		}
		if w.rx.MatchString(text) {
			w.matched = true
			return true
		}
	}
	return false
}

func checkCoverage(t *testing.T, want []string, got []analyze.Finding) {
	t.Helper()
	for _, action := range want {
		found := false
		for _, f := range got {
			if strings.Contains(f.Message, fmt.Sprintf("action %q", action)) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no coverage finding for action %q", action)
		}
	}
	if len(got) != len(want) {
		t.Errorf("coverage findings: got %d, want %d: %v", len(got), len(want), got)
	}
}

// checkDeletable is the differential proof: every finding marked
// Deletable must tombstone out of its policy without changing any
// decision (modulo the deleted set's own denial entries) over the
// generated request corpus — on the interpreted evaluator AND the
// compiled engine, which must also agree with each other throughout.
func checkDeletable(t *testing.T, rep *analyze.Report, pols map[string]*policy.Policy) {
	t.Helper()
	var all []*policy.Policy
	for _, p := range pols {
		all = append(all, p)
	}
	reqs := analyze.GenRequests(all...)
	for _, f := range rep.Findings {
		if !f.Deletable {
			continue
		}
		pol := pols[f.Source]
		if pol == nil {
			t.Errorf("deletable finding with unknown source %q", f.Source)
			continue
		}
		tomb := analyze.Tombstone(pol, f.Stmt, f.Set)
		cBefore, cAfter := policy.Compile(pol), policy.Compile(tomb)
		for i := range reqs {
			req := &reqs[i]
			before, after := pol.Evaluate(req), tomb.Evaluate(req)
			if got := cBefore.Evaluate(req); got != before {
				t.Fatalf("compiled/interpreted divergence before deletion on %+v: %+v vs %+v", req, got, before)
			}
			if got := cAfter.Evaluate(req); got != after {
				t.Fatalf("compiled/interpreted divergence after deletion on %+v: %+v vs %+v", req, got, after)
			}
			if !analyze.DecisionsEquivalent(req, before, after, f.Label) {
				t.Fatalf("deleting %s (%s) changed a decision:\nreq:    %+v\nbefore: %+v\nafter:  %+v",
					f.Label, f.Class, req, before, after)
			}
		}
	}
}
