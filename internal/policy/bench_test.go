package policy

import "testing"

// Engine micro-benchmarks complementing the repo-level P2 sweep.

func benchPolicy(b *testing.B) *Policy {
	b.Helper()
	p, err := ParseString(fig3, "VO:NFC")
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkParsePolicy(b *testing.B) {
	b.SetBytes(int64(len(fig3)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(fig3, "VO:NFC"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateGrant(b *testing.B) {
	p := benchPolicy(b)
	spec, err := parseBenchSpec(`&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)`)
	if err != nil {
		b.Fatal(err)
	}
	req := &Request{Subject: bo, Action: ActionStart, Spec: spec}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Evaluate(req).Allowed {
			b.Fatal("denied")
		}
	}
}

func BenchmarkEvaluateCompiled(b *testing.B) {
	p := benchPolicy(b)
	c := Compile(p)
	spec, err := parseBenchSpec(`&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)`)
	if err != nil {
		b.Fatal(err)
	}
	req := &Request{Subject: bo, Action: ActionStart, Spec: spec}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Evaluate(req).Allowed {
			b.Fatal("denied")
		}
	}
}

func BenchmarkUnparse(b *testing.B) {
	p := benchPolicy(b)
	for i := 0; i < b.N; i++ {
		_ = p.Unparse()
	}
}
