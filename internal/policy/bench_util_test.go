package policy

import "gridauth/internal/rsl"

func parseBenchSpec(text string) (*rsl.Spec, error) {
	return rsl.ParseSpec(text)
}
