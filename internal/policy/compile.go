package policy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"gridauth/internal/gsi"
	"gridauth/internal/rsl"
)

// Compiled is a one-shot compilation of a policy snapshot into an
// attribute-indexed decision structure. Compile does once, per policy
// swap, the work the interpreted evaluator repeats per request:
//
//   - every subject, attribute, action and value string is interned into
//     a symbol table (deduplicating the megabytes of repeated strings a
//     1M-rule policy carries, and giving actions dense integer IDs);
//   - assertion sets are bucketed by (subject, action) and pre-split into
//     requirement sets and grant sets (IsRequirement decided here, not
//     per request);
//   - each subject's bucket already contains the statements of every
//     group prefix above it, merged in policy order, so evaluation never
//     scans the statement list;
//   - subjects are kept in a sorted list searched by longest identity
//     prefix, so identities that match only group statements (proxy
//     names, unknown users) resolve with one binary search;
//   - clauses are flattened into matcher structs with NULL/self/literal
//     discrimination resolved and numeric limits pre-parsed;
//   - per-action "can anything match?" answers are precomputed, so
//     actions no statement mentions short-circuit to default deny.
//
// The hot-path Evaluate is then a couple of map lookups plus flattened
// matcher checks, with zero heap allocations on the permit path: permit
// reasons and GrantedBy labels are precomputed at compile time, and deny
// reasons are built lazily by re-running the interpreted evaluator over
// the (tiny) applicable statement chain, which also guarantees denial
// text is byte-for-byte identical to Policy.Evaluate.
//
// A Compiled is immutable and safe for concurrent use. It is built from
// a policy snapshot; Store rebuilds it inside Update before OnChange
// hooks fire, so a stale compiled form never outlives its policy.
type Compiled struct {
	source string
	pol    *Policy

	// actions maps literal action selector values to dense IDs;
	// actionable[id] reports whether any live set admits that action.
	actions     map[string]int
	actionable  []bool
	anyWildcard bool

	// byExact maps every distinct statement subject to its evaluation
	// plan (own sets plus all group-prefix sets, in policy order).
	byExact map[gsi.DN]*subjectEntry

	// px holds the same subjects sorted with prefix-parent links, and
	// entries[i] is the plan for px.keys[i]. Identities not in byExact
	// are resolved by longest-prefix binary search.
	px      subjectIndex
	entries []*subjectEntry

	stats CompileStats
}

// CompileStats describes one compilation, for capacity planning and the
// policycheck -stats flag.
type CompileStats struct {
	// Statements and Sets count the policy's statements and assertion sets.
	Statements int
	Sets       int
	// GrantSets, RequirementSets and DeadSets partition the sets: dead
	// sets (e.g. an action selector that can never match) are dropped
	// from the compiled form.
	GrantSets       int
	RequirementSets int
	DeadSets        int
	// Subjects counts distinct statement subjects (= exact-lookup
	// buckets); GroupPrefixes counts subjects that are proper prefixes
	// of at least one other subject.
	Subjects      int
	GroupPrefixes int
	// Actions counts distinct literal action selector values;
	// ActionBuckets counts (subject, action) buckets across all plans;
	// WildcardSets counts live sets with no literal action selector.
	Actions       int
	ActionBuckets int
	WildcardSets  int
	// Symbols counts interned strings (subjects, attributes, values).
	Symbols int
	// CompileTime is the wall-clock cost of the compilation.
	CompileTime time.Duration
}

// subjectEntry is the per-subject evaluation plan: the applicable
// statement chain (own statements plus every group prefix above, in
// policy order) both compiled and as raw statements for lazy denial
// rendering.
type subjectEntry struct {
	plan  plan
	stmts []*Statement
}

// plan holds a subject's compiled sets bucketed by action ID, with sets
// lacking a literal action selector (matching any or runtime-determined
// actions) kept aside. Within every list, sets appear in policy order.
type plan struct {
	buckets    []actionBucket
	wildReqs   []*cset
	wildGrants []*cset
}

type actionBucket struct {
	action int
	reqs   []*cset
	grants []*cset
}

// cset is one compiled assertion set.
type cset struct {
	// ord is the set's global declaration order (statement-major), the
	// merge key that keeps chain evaluation in policy order.
	ord   int
	isReq bool
	// wildcard marks a set with no literal action selector; actionIDs
	// lists the admitted actions otherwise. oddAction holds action
	// clauses needing runtime evaluation (self, != , ordering).
	wildcard  bool
	actionIDs []int
	oddAction []matcher
	// matchers holds the non-action clauses in clause order.
	matchers []matcher
	// grantedBy and permitReason are precomputed for grant sets so a
	// permit allocates nothing.
	grantedBy    string
	permitReason string
}

// Matcher modes, one per shape of clauseSatisfied's behaviour.
const (
	mEq      uint8 = iota // attribute present, every value permitted
	mEqNull               // attribute absent
	mNeq                  // no value forbidden (absent OK)
	mNeqNull              // attribute present, every value non-empty
	mLimit                // every value within every limit (absent OK)
	mNever                // unknown operator: never satisfied
)

// Attribute kinds: where the request's values come from.
const (
	akSpec     uint8 = iota // job description attribute
	akAction                // synthesized from Request.Action
	akJobowner              // synthesized from Request.JobOwner/Subject
)

// matcher is one flattened clause: NULL/self/literal discrimination and
// numeric limit parsing are resolved at compile time.
type matcher struct {
	kind    uint8
	mode    uint8
	op      rsl.Op
	hasSelf bool
	// attr is the lower-cased attribute name for spec lookup.
	attr string
	// want holds resolved literal values (mEq/mNeq).
	want []string
	// limits holds pre-parsed bounds (mLimit).
	limits []limit
}

// limit is one pre-parsed ordering bound.
type limit struct {
	isSelf bool
	str    string
	num    float64
	isNum  bool
}

// interner deduplicates strings: equal strings across a compiled policy
// share one backing array, which is what keeps a 1M-rule policy's
// compiled form from doubling the repeated subject/value text.
type interner struct {
	canon map[string]string
}

func newInterner() *interner { return &interner{canon: make(map[string]string)} }

// intern returns the canonical copy of s.
func (in *interner) intern(s string) string {
	if c, ok := in.canon[s]; ok {
		return c
	}
	in.canon[s] = s
	return s
}

func (in *interner) size() int { return len(in.canon) }

// Compile builds the attribute-indexed form of p. It never fails: a
// policy that parsed is compilable, and constructs the interpreter
// tolerates (unknown operators, empty value lists) compile to matchers
// with the same behaviour.
func Compile(p *Policy) *Compiled {
	start := time.Now()
	c := &Compiled{
		source:  p.Source,
		pol:     p,
		actions: make(map[string]int),
		byExact: make(map[gsi.DN]*subjectEntry, len(p.Statements)),
	}
	in := newInterner()

	// Pass 1: compile every assertion set, grouping statements and sets
	// by subject in first-appearance order.
	type subjData struct {
		stmtIdx []int
		stmts   []*Statement
		sets    []*cset
	}
	bySubject := make(map[string]*subjData, len(p.Statements))
	var order []string
	seq := 0
	for stmtIdx, st := range p.Statements {
		subj := in.intern(string(st.Subject))
		sd := bySubject[subj]
		if sd == nil {
			sd = &subjData{}
			bySubject[subj] = sd
			order = append(order, subj)
		}
		sd.stmtIdx = append(sd.stmtIdx, stmtIdx)
		sd.stmts = append(sd.stmts, st)
		for i, set := range st.Sets {
			cs, dead := c.compileSet(st, i, set, seq, in)
			seq++
			c.stats.Sets++
			if dead {
				c.stats.DeadSets++
				continue
			}
			if cs.isReq {
				c.stats.RequirementSets++
			} else {
				c.stats.GrantSets++
			}
			if cs.wildcard {
				c.anyWildcard = true
				c.stats.WildcardSets++
			} else {
				for _, id := range cs.actionIDs {
					c.actionable[id] = true
				}
			}
			sd.sets = append(sd.sets, cs)
		}
	}
	c.stats.Statements = len(p.Statements)

	// Pass 2: sort subjects and link each to its longest proper prefix
	// also present as a subject (stack sweep inside buildSubjectIndex).
	c.px = buildSubjectIndex(append(make([]string, 0, len(order)), order...))
	c.stats.GroupPrefixes = c.px.groups

	// Pass 3: build each subject's plan from its own sets plus every
	// ancestor's, merged back into policy order.
	c.entries = make([]*subjectEntry, len(c.px.keys))
	for i, k := range c.px.keys {
		var (
			chainSets  []*cset
			chainIdx   []int
			chainStmts []*Statement
		)
		for _, j := range c.px.chain(int32(i)) {
			sd := bySubject[c.px.keys[j]]
			chainSets = append(chainSets, sd.sets...)
			chainIdx = append(chainIdx, sd.stmtIdx...)
			chainStmts = append(chainStmts, sd.stmts...)
		}
		sort.Slice(chainSets, func(a, b int) bool { return chainSets[a].ord < chainSets[b].ord })
		sort.Sort(&stmtsByIndex{idx: chainIdx, stmts: chainStmts})
		e := &subjectEntry{stmts: chainStmts}
		e.plan = buildPlan(chainSets)
		c.stats.ActionBuckets += len(e.plan.buckets)
		c.entries[i] = e
		c.byExact[gsi.DN(k)] = e
	}

	c.stats.Subjects = len(c.px.keys)
	c.stats.Actions = len(c.actions)
	c.stats.Symbols = in.size()
	c.stats.CompileTime = time.Since(start)
	return c
}

// stmtsByIndex sorts a statement slice by original policy position.
type stmtsByIndex struct {
	idx   []int
	stmts []*Statement
}

func (s *stmtsByIndex) Len() int           { return len(s.idx) }
func (s *stmtsByIndex) Less(a, b int) bool { return s.idx[a] < s.idx[b] }
func (s *stmtsByIndex) Swap(a, b int) {
	s.idx[a], s.idx[b] = s.idx[b], s.idx[a]
	s.stmts[a], s.stmts[b] = s.stmts[b], s.stmts[a]
}

// compileSet flattens one assertion set. dead reports that the set's
// action selector can never match any request (it is dropped).
func (c *Compiled) compileSet(st *Statement, idx int, set *AssertionSet, seq int, in *interner) (*cset, bool) {
	cs := &cset{ord: seq, isReq: set.IsRequirement()}
	var (
		haveLiteral bool
		ids         []int
		dead        bool
	)
	for _, cl := range set.Clauses {
		if cl.Attribute == AttrAction {
			if cl.Op != rsl.OpEq {
				cs.oddAction = append(cs.oddAction, compileMatcher(cl, in))
				continue
			}
			hasSelf := false
			var lits []string
			for _, v := range cl.Values {
				switch v.Literal {
				case ValueNull:
					// dropped, as in clauseSatisfied
				case ValueSelf:
					hasSelf = true
				default:
					lits = append(lits, in.intern(v.Resolve(nil)))
				}
			}
			if hasSelf {
				// (action = self ...) compares against the requesting
				// identity; decided at request time.
				cs.oddAction = append(cs.oddAction, compileMatcher(cl, in))
				continue
			}
			if len(lits) == 0 {
				// (action = NULL): the action attribute is always
				// present, so this selector never matches.
				dead = true
				continue
			}
			next := make([]int, 0, len(lits))
			for _, lit := range lits {
				next = append(next, c.actionID(lit))
			}
			if !haveLiteral {
				haveLiteral = true
				ids = dedupInts(next)
			} else {
				ids = intersectInts(ids, next)
			}
			continue
		}
		cs.matchers = append(cs.matchers, compileMatcher(cl, in))
	}
	if haveLiteral {
		if len(ids) == 0 {
			// Contradictory literal selectors, e.g.
			// (action=start)(action=cancel).
			dead = true
		}
		cs.actionIDs = ids
	} else {
		cs.wildcard = true
	}
	if !cs.isReq {
		cs.grantedBy = fmt.Sprintf("%s#%d", st.Subject, idx)
		cs.permitReason = "granted by " + cs.grantedBy
	}
	return cs, dead
}

// actionID interns an action literal, growing the actionable table.
func (c *Compiled) actionID(lit string) int {
	if id, ok := c.actions[lit]; ok {
		return id
	}
	id := len(c.actions)
	c.actions[lit] = id
	c.actionable = append(c.actionable, false)
	return id
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for _, x := range xs {
		seen := false
		for _, o := range out {
			if o == x {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, x)
		}
	}
	return out
}

func intersectInts(a, b []int) []int {
	out := a[:0]
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

// compileMatcher flattens one clause, replicating clauseSatisfied's
// value resolution: NULL becomes a flag, self the requesting identity,
// variables the empty string.
func compileMatcher(cl *rsl.Relation, in *interner) matcher {
	m := matcher{op: cl.Op, attr: in.intern(strings.ToLower(cl.Attribute))}
	// The interpreter matches the synthesized attributes by exact name
	// (parsed policies are already lower case; a hand-built "Action"
	// clause reads the job description, and so must we).
	switch cl.Attribute {
	case AttrAction:
		m.kind = akAction
	case AttrJobowner:
		m.kind = akJobowner
	default:
		m.kind = akSpec
	}
	isNull := false
	var want []string
	for _, v := range cl.Values {
		switch v.Literal {
		case ValueNull:
			isNull = true
		case ValueSelf:
			m.hasSelf = true
		default:
			want = append(want, in.intern(v.Resolve(nil)))
		}
	}
	switch cl.Op {
	case rsl.OpEq:
		if isNull && len(want) == 0 && !m.hasSelf {
			m.mode = mEqNull
		} else {
			m.mode = mEq
			m.want = want
		}
	case rsl.OpNeq:
		if isNull && len(want) == 0 && !m.hasSelf {
			m.mode = mNeqNull
		} else {
			m.mode = mNeq
			m.want = want
		}
	case rsl.OpLt, rsl.OpLe, rsl.OpGt, rsl.OpGe:
		m.mode = mLimit
		for _, w := range want {
			l := limit{str: w}
			if n, err := strconv.ParseFloat(strings.TrimSpace(w), 64); err == nil {
				l.num, l.isNum = n, true
			}
			m.limits = append(m.limits, l)
		}
		if m.hasSelf {
			m.limits = append(m.limits, limit{isSelf: true})
		}
	default:
		m.mode = mNever
	}
	return m
}

// Accessors -------------------------------------------------------------

// Source returns the label of the compiled policy's source.
func (c *Compiled) Source() string { return c.source }

// Policy returns the policy snapshot the compiled form was built from.
func (c *Compiled) Policy() *Policy { return c.pol }

// Stats returns the compilation statistics.
func (c *Compiled) Stats() CompileStats { return c.stats }

// ApplicableTo returns the statements whose subject is a prefix of
// identity, in policy order — the same list Policy.ApplicableTo computes
// by linear scan. The returned slice is shared and must not be modified.
func (c *Compiled) ApplicableTo(identity gsi.DN) []*Statement {
	if e := c.byExact[identity]; e != nil {
		return e.stmts
	}
	if j := c.px.longestPrefix(string(identity)); j >= 0 {
		return c.entries[j].stmts
	}
	return nil
}

// Evaluation ------------------------------------------------------------

// Evaluate decides a request against the compiled policy. It returns
// decisions identical to Policy.Evaluate on the source policy, field for
// field, and does not allocate on the permit path.
func (c *Compiled) Evaluate(req *Request) Decision {
	// Precomputed per-action answer: if no live set can match the
	// action, no subject can be granted (or constrained) anything.
	if !c.anyWildcard {
		id, ok := c.actions[req.Action]
		if !ok || !c.actionable[id] {
			return c.defaultDeny(req)
		}
	}
	e := c.byExact[req.Subject]
	if e == nil {
		if j := c.px.longestPrefix(string(req.Subject)); j >= 0 {
			e = c.entries[j]
		}
	}
	if e == nil {
		return c.defaultDeny(req)
	}
	pl := &e.plan
	var reqs, grants []*cset
	if id, ok := c.actions[req.Action]; ok {
		for i := range pl.buckets {
			if pl.buckets[i].action == id {
				reqs = pl.buckets[i].reqs
				grants = pl.buckets[i].grants
				break
			}
		}
	}

	// Requirements first: the interpreter scans the whole chain, so a
	// violation anywhere denies regardless of grants.
	for i, j := 0, 0; i < len(reqs) || j < len(pl.wildReqs); {
		var cs *cset
		if j >= len(pl.wildReqs) || (i < len(reqs) && reqs[i].ord < pl.wildReqs[j].ord) {
			cs = reqs[i]
			i++
		} else {
			cs = pl.wildReqs[j]
			j++
		}
		if !cs.actionOK(req) {
			continue
		}
		if !cs.satisfied(req) {
			return c.slowEval(e, req)
		}
	}

	// Grants: the first satisfied one (in policy order) wins.
	sawGrant := false
	for i, j := 0, 0; i < len(grants) || j < len(pl.wildGrants); {
		var cs *cset
		if j >= len(pl.wildGrants) || (i < len(grants) && grants[i].ord < pl.wildGrants[j].ord) {
			cs = grants[i]
			i++
		} else {
			cs = pl.wildGrants[j]
			j++
		}
		if !cs.actionOK(req) {
			continue
		}
		sawGrant = true
		if cs.satisfied(req) {
			return Decision{
				Allowed:    true,
				Applicable: true,
				Source:     c.source,
				GrantedBy:  cs.grantedBy,
				Reason:     cs.permitReason,
			}
		}
	}
	if sawGrant {
		return c.slowEval(e, req)
	}
	return c.defaultDeny(req)
}

// slowEval renders a denial by re-running the interpreted evaluator over
// the applicable statement chain. Denials are the cold path, and reusing
// evaluateStatements guarantees reason strings match Policy.Evaluate
// byte for byte.
func (c *Compiled) slowEval(e *subjectEntry, req *Request) Decision {
	return evaluateStatements(c.source, e.stmts, req)
}

func (c *Compiled) defaultDeny(req *Request) Decision {
	return Decision{
		Source: c.source,
		Reason: fmt.Sprintf("no policy statement grants %q to %s (default deny)", req.Action, req.Subject),
	}
}

// actionOK evaluates the set's runtime action clauses (its literal
// selector, if any, was matched by bucket placement).
func (cs *cset) actionOK(req *Request) bool {
	for i := range cs.oddAction {
		if !cs.oddAction[i].match(req) {
			return false
		}
	}
	return true
}

// satisfied evaluates the set's non-action clauses.
func (cs *cset) satisfied(req *Request) bool {
	for i := range cs.matchers {
		if !cs.matchers[i].match(req) {
			return false
		}
	}
	return true
}

// match evaluates one flattened clause against the request without
// allocating: action and jobowner are synthesized in place, spec
// attributes read by reference.
func (m *matcher) match(req *Request) bool {
	var (
		one  string
		many []string
		n    int
	)
	switch m.kind {
	case akAction:
		one, n = req.Action, 1
	case akJobowner:
		if req.JobOwner != "" {
			one = string(req.JobOwner)
		} else {
			one = string(req.Subject)
		}
		n = 1
	default:
		if req.Spec != nil {
			many = req.Spec.RefLower(m.attr)
			n = len(many)
		}
	}
	switch m.mode {
	case mEqNull:
		return n == 0
	case mEq:
		if n == 0 {
			return false
		}
		for i := 0; i < n; i++ {
			h := one
			if many != nil {
				h = many[i]
			}
			if !m.wants(h, req) {
				return false
			}
		}
		return true
	case mNeqNull:
		if n == 0 {
			return false
		}
		for i := 0; i < n; i++ {
			h := one
			if many != nil {
				h = many[i]
			}
			if h == "" {
				return false
			}
		}
		return true
	case mNeq:
		for i := 0; i < n; i++ {
			h := one
			if many != nil {
				h = many[i]
			}
			if m.wants(h, req) {
				return false
			}
		}
		return true
	case mLimit:
		for i := 0; i < n; i++ {
			h := one
			if many != nil {
				h = many[i]
			}
			if !m.withinLimits(h, req) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// wants reports whether h is among the clause's resolved values.
func (m *matcher) wants(h string, req *Request) bool {
	if m.hasSelf && h == string(req.Subject) {
		return true
	}
	for _, w := range m.want {
		if w == h {
			return true
		}
	}
	return false
}

// withinLimits checks h against every pre-parsed bound, replicating
// rsl.Compare: numeric when both sides parse as floats, byte-wise string
// comparison of the unparsed values otherwise.
func (m *matcher) withinLimits(h string, req *Request) bool {
	ht := strings.TrimSpace(h)
	var (
		hn  float64
		hOk bool
	)
	if maybeNumeric(ht) {
		if v, ok := fastUint(ht); ok {
			hn, hOk = v, true
		} else if v, err := strconv.ParseFloat(ht, 64); err == nil {
			hn, hOk = v, true
		}
	}
	for i := range m.limits {
		l := &m.limits[i]
		if l.isSelf {
			if !rsl.Compare(h, m.op, string(req.Subject)) {
				return false
			}
			continue
		}
		if hOk && l.isNum {
			if !cmpFloat(hn, m.op, l.num) {
				return false
			}
		} else if !cmpString(h, m.op, l.str) {
			return false
		}
	}
	return true
}

// maybeNumeric is a sound prefilter for strconv.ParseFloat: a false
// result means ParseFloat is guaranteed to fail, letting the hot path
// skip the parse (and its error allocation) for obviously non-numeric
// values like paths and queue names.
// fastUint parses a short unsigned decimal integer without strconv's
// generality; up to 15 digits every value is exactly representable in
// a float64, so the result matches ParseFloat bit for bit. The common
// limit operands (count, maxtime, sizes) all take this path.
func fastUint(s string) (float64, bool) {
	if len(s) == 0 || len(s) > 15 {
		return 0, false
	}
	var n uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return float64(n), true
}

func maybeNumeric(s string) bool {
	if s == "" {
		return false
	}
	switch c := s[0]; {
	case c >= '0' && c <= '9':
		return true
	case c == '+' || c == '-' || c == '.':
		return true
	case c == 'i' || c == 'I' || c == 'n' || c == 'N':
		// inf / nan spellings
		return true
	}
	return false
}

func cmpFloat(a float64, op rsl.Op, b float64) bool {
	switch op {
	case rsl.OpLt:
		return a < b
	case rsl.OpLe:
		return a <= b
	case rsl.OpGt:
		return a > b
	case rsl.OpGe:
		return a >= b
	default:
		return false
	}
}

func cmpString(a string, op rsl.Op, b string) bool {
	switch op {
	case rsl.OpLt:
		return a < b
	case rsl.OpLe:
		return a <= b
	case rsl.OpGt:
		return a > b
	case rsl.OpGe:
		return a >= b
	default:
		return false
	}
}

// buildPlan distributes policy-ordered compiled sets into per-action
// buckets, pre-split by requirement/grant.
func buildPlan(csets []*cset) plan {
	var pl plan
	bucketOf := make(map[int]int)
	for _, cs := range csets {
		if cs.wildcard {
			if cs.isReq {
				pl.wildReqs = append(pl.wildReqs, cs)
			} else {
				pl.wildGrants = append(pl.wildGrants, cs)
			}
			continue
		}
		for _, id := range cs.actionIDs {
			bi, ok := bucketOf[id]
			if !ok {
				bi = len(pl.buckets)
				pl.buckets = append(pl.buckets, actionBucket{action: id})
				bucketOf[id] = bi
			}
			if cs.isReq {
				pl.buckets[bi].reqs = append(pl.buckets[bi].reqs, cs)
			} else {
				pl.buckets[bi].grants = append(pl.buckets[bi].grants, cs)
			}
		}
	}
	sort.Slice(pl.buckets, func(a, b int) bool { return pl.buckets[a].action < pl.buckets[b].action })
	return pl
}

