package policy

import (
	"strings"
	"testing"

	"gridauth/internal/gsi"
	"gridauth/internal/rsl"
)

// diffDecisions asserts the compiled evaluator returns exactly the
// interpreted decision, field for field (incl. GrantedBy and Reason).
func diffDecisions(t *testing.T, p *Policy, c *Compiled, req *Request) {
	t.Helper()
	want := p.Evaluate(req)
	got := c.Evaluate(req)
	if got != want {
		t.Errorf("decision mismatch for %s %s:\n  interpreted: %+v\n  compiled:    %+v",
			req.Subject, req.Action, want, got)
	}
}

// TestCompiledFig3FullEquivalence covers every outcome class — permit,
// requirement violation, unsatisfied grants, abstain, default deny — and
// checks full Decision equality, not just Allowed.
func TestCompiledFig3FullEquivalence(t *testing.T) {
	p := fig3Policy(t)
	c := Compile(p)
	reqs := []*Request{
		// Permit: Bo's first grant set.
		{Subject: bo, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)`)},
		// Permit: Bo's second grant set (GrantedBy must name set #1).
		{Subject: bo, Action: ActionStart,
			Spec: spec(t, `&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=3)`)},
		// Requirement violation: missing jobtag.
		{Subject: bo, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(count=3)`)},
		// No grant satisfied: wrong executable.
		{Subject: bo, Action: ActionStart,
			Spec: spec(t, `&(executable=rm)(directory=/sandbox/test)(jobtag=ADS)(count=3)`)},
		// Over the count limit.
		{Subject: bo, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=9)`)},
		// Kate cancels an NFC job.
		{Subject: kate, Action: ActionCancel, JobOwner: bo,
			Spec: spec(t, `&(executable=test2)(jobtag=NFC)`)},
		// Sam has no grants: abstain vs requirement violation paths.
		{Subject: sam, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(jobtag=ADS)`)},
		{Subject: sam, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)`)},
		// Outsider: nothing applies.
		{Subject: ext, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(jobtag=ADS)`)},
		// Action no statement mentions: precomputed default deny.
		{Subject: bo, Action: "reboot",
			Spec: spec(t, `&(executable=test1)(jobtag=ADS)`)},
		// Management action with nil spec.
		{Subject: kate, Action: ActionCancel, JobOwner: bo},
		// Proxy-extended identity: prefix-matches Bo's statements.
		{Subject: bo + "/CN=proxy", Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)`)},
	}
	for _, req := range reqs {
		diffDecisions(t, p, c, req)
	}
}

// TestNeqNullAllValues pins the corrected (attr != NULL) semantics — the
// attribute must be present with EVERY value non-empty — on both
// evaluators. Before the fix, only the first value was inspected, so
// ["", "x"] and ["x", ""] were judged inconsistently.
func TestNeqNullAllValues(t *testing.T) {
	p := MustParse(`
/O=Grid: &(action = start)(jobtag != NULL)
/O=Grid/CN=U: &(action = start)(executable = test1)
`, "local")
	c := Compile(p)
	u := gsi.DN("/O=Grid/CN=U")
	tests := []struct {
		name  string
		tags  []string
		allow bool
	}{
		{"absent", nil, false},
		{"single empty", []string{""}, false},
		{"single non-empty", []string{"A"}, true},
		{"empty then non-empty", []string{"", "A"}, false},
		{"non-empty then empty", []string{"A", ""}, false},
		{"all non-empty", []string{"A", "B"}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sp := rsl.NewSpec().Set("executable", "test1")
			if tt.tags != nil {
				sp.Set("jobtag", tt.tags...)
			}
			req := &Request{Subject: u, Action: ActionStart, Spec: sp}
			want := p.Evaluate(req)
			got := c.Evaluate(req)
			if got != want {
				t.Fatalf("evaluators disagree:\n  interpreted: %+v\n  compiled:    %+v", want, got)
			}
			if got.Allowed != tt.allow {
				t.Errorf("Allowed = %v, want %v (reason %q)", got.Allowed, tt.allow, got.Reason)
			}
		})
	}
}

// TestCompiledSelfAndLimits exercises self values, jobowner synthesis
// and ordering limits through the compiled matchers.
func TestCompiledSelfAndLimits(t *testing.T) {
	p := MustParse(`
/O=Grid/CN=U: &(action = cancel)(jobowner = self) &(action = start)(executable = sim)(count >= 2)(count <= 8)
`, "local")
	c := Compile(p)
	u := gsi.DN("/O=Grid/CN=U")
	reqs := []*Request{
		{Subject: u, Action: ActionCancel, JobOwner: u},
		{Subject: u, Action: ActionCancel, JobOwner: "/O=Grid/CN=V"},
		{Subject: u, Action: ActionCancel}, // owner defaults to subject
		{Subject: u, Action: ActionStart, Spec: spec(t, `&(executable=sim)(count=4)`)},
		{Subject: u, Action: ActionStart, Spec: spec(t, `&(executable=sim)(count=1)`)},
		{Subject: u, Action: ActionStart, Spec: spec(t, `&(executable=sim)(count=9)`)},
		{Subject: u, Action: ActionStart, Spec: spec(t, `&(executable=sim)(count=notanumber)`)},
		{Subject: u, Action: ActionStart, Spec: spec(t, `&(executable=sim)`)}, // absent limit attr
	}
	for _, req := range reqs {
		diffDecisions(t, p, c, req)
	}
}

// TestCompiledPermitPathZeroAlloc pins the tentpole's core claim: a
// permit decision on the compiled form allocates nothing, including for
// identities resolved through the prefix index and requests carrying
// numeric limits and group requirements.
func TestCompiledPermitPathZeroAlloc(t *testing.T) {
	p := MustParse(`
/O=Grid: &(action = start)(jobtag != NULL)
/O=Grid/CN=U: &(action = start)(executable = sim)(count <= 8)
`, "local")
	c := Compile(p)
	sp := rsl.NewSpec().Set("executable", "sim").Set("count", "4").Set("jobtag", "T")
	exact := &Request{Subject: "/O=Grid/CN=U", Action: ActionStart, Spec: sp}
	proxy := &Request{Subject: "/O=Grid/CN=U/CN=proxy", Action: ActionStart, Spec: sp}
	for name, req := range map[string]*Request{"exact": exact, "prefix": proxy} {
		if d := c.Evaluate(req); !d.Allowed {
			t.Fatalf("%s: unexpectedly denied: %+v", name, d)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if !c.Evaluate(req).Allowed {
				t.Fatal("denied")
			}
		})
		if allocs != 0 {
			t.Errorf("%s permit path allocates %.1f objects/op, want 0", name, allocs)
		}
	}
}

func TestCompileStats(t *testing.T) {
	p := fig3Policy(t)
	c := Compile(p)
	s := c.Stats()
	if s.Statements != 3 || s.Sets != 5 {
		t.Errorf("Statements/Sets = %d/%d, want 3/5", s.Statements, s.Sets)
	}
	if s.GrantSets != 4 || s.RequirementSets != 1 || s.DeadSets != 0 {
		t.Errorf("Grant/Requirement/Dead = %d/%d/%d, want 4/1/0",
			s.GrantSets, s.RequirementSets, s.DeadSets)
	}
	if s.Subjects != 3 || s.GroupPrefixes != 1 {
		t.Errorf("Subjects/GroupPrefixes = %d/%d, want 3/1", s.Subjects, s.GroupPrefixes)
	}
	if s.Actions != 2 { // start, cancel
		t.Errorf("Actions = %d, want 2", s.Actions)
	}
	if s.Symbols == 0 || s.ActionBuckets == 0 {
		t.Errorf("Symbols/ActionBuckets = %d/%d, want > 0", s.Symbols, s.ActionBuckets)
	}
	if s.CompileTime <= 0 {
		t.Errorf("CompileTime = %v, want > 0", s.CompileTime)
	}
	if c.Policy() != p || c.Source() != "VO:NFC" {
		t.Errorf("Policy/Source accessors wrong")
	}
}

// TestCompiledDeadSets: selectors that can never match are dropped but
// preserve interpreted semantics.
func TestCompiledDeadSets(t *testing.T) {
	p := MustParse(`
/O=Grid/CN=U: &(action = NULL)(executable = sim) &(action = start)(executable = sim)
`, "local")
	c := Compile(p)
	if c.Stats().DeadSets != 1 {
		t.Errorf("DeadSets = %d, want 1", c.Stats().DeadSets)
	}
	req := &Request{Subject: "/O=Grid/CN=U", Action: ActionStart,
		Spec: spec(t, `&(executable=sim)`)}
	diffDecisions(t, p, c, req)
}

// TestStoreCompiledSwap pins the Update contract: the compiled form is
// rebuilt before OnChange hooks fire, and always corresponds to the
// policy from the same snapshot.
func TestStoreCompiledSwap(t *testing.T) {
	s := NewStore(MustParse(boDN+`: &(action = start)(executable = a)`, "VO"))
	if c := s.Compiled(); c == nil || c.Policy() != s.Current() {
		t.Fatal("initial compiled form missing or mismatched")
	}
	var hookSaw *Compiled
	var hookPol *Policy
	s.OnChange(func() {
		hookSaw = s.Compiled()
		hookPol = s.Current()
	})
	if err := s.UpdateText(boDN + `: &(action = cancel)(jobtag = x)`); err != nil {
		t.Fatal(err)
	}
	if hookSaw == nil || hookSaw.Policy() != hookPol {
		t.Fatal("hook observed compiled form from a different snapshot")
	}
	if !strings.Contains(hookPol.Unparse(), "cancel") {
		t.Errorf("hook saw stale policy: %s", hookPol.Unparse())
	}
	// The compiled form decides like the new policy.
	d := s.Compiled().Evaluate(&Request{Subject: gsi.DN(boDN), Action: ActionCancel,
		Spec: spec(t, `&(jobtag=x)`)})
	if !d.Allowed {
		t.Errorf("compiled form did not pick up the update: %+v", d)
	}
}
