package policy

import (
	"testing"

	"gridauth/internal/gsi"
	"gridauth/internal/rsl"
)

// FuzzCompiledEquivalence is the differential fuzzer for the compiled
// policy engine: for any policy text that parses and any request shape,
// Compile(p).Evaluate must return a Decision identical — every field,
// including GrantedBy and the Reason text — to the interpreted
// Policy.Evaluate. The corpus is seeded with the Figure-3 conformance
// policies and the language's edge constructs (NULL, self, ordering
// limits, nested subject prefixes, contradictory action selectors).
func FuzzCompiledEquivalence(f *testing.F) {
	seeds := []struct {
		policy, subject, action, owner, spec string
		noSpec                               bool
	}{
		// Figure 3 with its narrated permit/deny shapes.
		{fig3, string(bo), ActionStart, "",
			`&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)`, false},
		{fig3, string(bo), ActionStart, "",
			`&(executable=test1)(directory=/sandbox/test)(count=3)`, false},
		{fig3, string(kate), ActionCancel, string(bo),
			`&(executable=test2)(jobtag=NFC)`, false},
		{fig3, string(sam), ActionStart, "", `&(executable=test1)`, false},
		{fig3, string(ext), ActionSignal, "", ``, true},
		// The paper's local-policy shape: self management + site cap.
		{`/O=Grid: &(action = start)(count <= 64)(executable != /bin/rm)
/O=Grid: &(action = cancel information signal)(jobowner = self)
/O=Grid/CN=U: &(action = start)(executable = sim)(queue = batch fast)`,
			"/O=Grid/CN=U", ActionCancel, "/O=Grid/CN=U", ``, true},
		// NULL in both polarities, multi-value requests.
		{`/O=Grid: &(action = start)(jobtag != NULL)(env = NULL)
/O=Grid/CN=U: &(action = start)(executable = a b)`,
			"/O=Grid/CN=U", ActionStart, "", `&(executable=a)(jobtag="" x)`, false},
		// Nested prefixes incl. a CN that properly prefixes another.
		{`/O=Grid: &(action = start)(count < 9)
/O=Grid/CN=Bo: &(action = start)(executable = probe)
/O=Grid/CN=Bo Liu: &(action = start)(executable = test1)`,
			"/O=Grid/CN=Bo Liu/CN=proxy", ActionStart, "", `&(executable=test1)(count=3)`, false},
		// Contradictory and odd action selectors.
		{`/O=Grid/CN=U: &(action = start)(action = cancel)(executable = a) &(action != cancel)(executable = a) &(action = NULL)(executable = a)`,
			"/O=Grid/CN=U", ActionStart, "", `&(executable=a)`, false},
		// Ordering against non-numeric values and self.
		{`/O=Grid/CN=U: &(action = start)(queue <= m)(executable = a)(jobowner >= self)`,
			"/O=Grid/CN=U", ActionStart, "/O=Grid/CN=T", `&(executable=a)(queue=batch)`, false},
	}
	for _, s := range seeds {
		f.Add(s.policy, s.subject, s.action, s.owner, s.spec, s.noSpec)
	}
	f.Fuzz(func(t *testing.T, policyText, subject, action, owner, specText string, noSpec bool) {
		pol, err := ParseString(policyText, "fuzz")
		if err != nil {
			return
		}
		var sp *rsl.Spec
		if !noSpec {
			if parsed, err := rsl.ParseSpec(specText); err == nil {
				sp = parsed
			}
		}
		req := &Request{
			Subject:  gsi.DN(subject),
			Action:   action,
			JobOwner: gsi.DN(owner),
			Spec:     sp,
		}
		want := pol.Evaluate(req)
		got := Compile(pol).Evaluate(req)
		if got != want {
			t.Fatalf("compiled decision diverges from interpreted:\npolicy:\n%s\nrequest: subject=%q action=%q owner=%q spec=%v\ninterpreted: %+v\ncompiled:    %+v",
				policyText, subject, action, owner, sp, want, got)
		}
	})
}
