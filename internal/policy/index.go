package policy

import (
	"gridauth/internal/gsi"
)

// Index accelerates statement lookup for large policies. The naive
// ApplicableTo scans every statement and prefix-compares its subject; an
// Index buckets statements by exact subject and keeps the (typically
// few) group-prefix statements — those that are proper prefixes of some
// member identity — in a separate list. For a policy with one statement
// per user this turns evaluation from O(#statements) into O(#prefix
// statements + 1). The DESIGN.md P2 benchmark quantifies the difference.
//
// The index is built once from a policy snapshot; rebuilding after policy
// changes is the caller's business.
type Index struct {
	source  string
	byExact map[gsi.DN][]*Statement
	// prefixes holds statements that must be prefix-matched. Statement
	// order across exact+prefix buckets is not preserved; evaluation
	// semantics do not depend on statement order.
	prefixes []*Statement
}

// NewIndex builds an index over the policy. A statement is treated as a
// group prefix when its subject lacks a CN component (individual Grid
// identities always carry one); statements with a CN are also
// prefix-matched against proxy-extended names by the caller normalizing
// identities first, which the GRAM layer already does.
func NewIndex(p *Policy) *Index {
	idx := &Index{
		source:  p.Source,
		byExact: make(map[gsi.DN][]*Statement, len(p.Statements)),
	}
	for _, st := range p.Statements {
		if st.Subject.CN() == "" {
			idx.prefixes = append(idx.prefixes, st)
			continue
		}
		idx.byExact[st.Subject] = append(idx.byExact[st.Subject], st)
	}
	return idx
}

// ApplicableTo returns the statements applying to identity.
func (x *Index) ApplicableTo(identity gsi.DN) []*Statement {
	exact := x.byExact[identity]
	out := make([]*Statement, 0, len(exact)+4)
	out = append(out, exact...)
	for _, st := range x.prefixes {
		if identity.HasPrefix(st.Subject) {
			out = append(out, st)
		}
	}
	return out
}

// Evaluate decides a request using the index. It returns the same
// decisions as Policy.Evaluate on the indexed policy.
func (x *Index) Evaluate(req *Request) Decision {
	return evaluateStatements(x.source, x.ApplicableTo(req.Subject), req)
}
