package policy

import (
	"sort"
	"strings"
)

// subjectIndex resolves identities to policy subjects by longest prefix.
// It replaces the former test-only Index type: where that structure kept
// group statements in a list that was linearly prefix-scanned per lookup
// (and missed statements whose subject carries a CN yet is still a
// proper prefix of a longer identity, e.g. proxy-extended names), this
// one holds every distinct statement subject in a sorted list and
// answers lookups with a single binary search.
//
// The trick that makes one search sufficient: alongside the sorted keys,
// parents[i] records the index of the longest key that is a proper
// prefix of keys[i] (-1 when none), computed with a stack sweep at build
// time. The keys prefixing an identity always form a chain, so once the
// longest match is known the rest are its precomputed ancestors — and
// the longest match is derivable from the identity's sorted predecessor:
// every key prefixing the identity is a prefix of that predecessor no
// longer than their longest common prefix.
type subjectIndex struct {
	keys    []string
	parents []int32
	// groups counts keys that are proper prefixes of at least one other
	// key (reported in CompileStats).
	groups int
}

// buildSubjectIndex indexes the given distinct subjects. The slice is
// sorted in place and retained.
func buildSubjectIndex(keys []string) subjectIndex {
	sort.Strings(keys)
	x := subjectIndex{keys: keys, parents: make([]int32, len(keys))}
	var stack []int32
	prefixed := make([]bool, len(keys))
	for i, k := range keys {
		for len(stack) > 0 && !strings.HasPrefix(k, keys[stack[len(stack)-1]]) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			p := stack[len(stack)-1]
			x.parents[i] = p
			prefixed[p] = true
		} else {
			x.parents[i] = -1
		}
		stack = append(stack, int32(i))
	}
	for _, p := range prefixed {
		if p {
			x.groups++
		}
	}
	return x
}

// longestPrefix returns the index of the longest key that is a proper
// prefix of id, or -1. id must not itself be a key (exact matches are
// resolved by map lookup before this is consulted).
func (x *subjectIndex) longestPrefix(id string) int32 {
	i := sort.SearchStrings(x.keys, id)
	if i == 0 {
		return -1
	}
	j := int32(i - 1)
	l := lcpLen(x.keys[j], id)
	for j >= 0 {
		if len(x.keys[j]) <= l {
			return j
		}
		j = x.parents[j]
	}
	return -1
}

// chain returns the indices of every key that is a prefix of keys[i]
// (including i itself), longest first.
func (x *subjectIndex) chain(i int32) []int32 {
	var out []int32
	for j := i; j >= 0; j = x.parents[j] {
		out = append(out, j)
	}
	return out
}

func lcpLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}
