package policy

import (
	"testing"
	"testing/quick"

	"gridauth/internal/gsi"
	"gridauth/internal/rsl"
)

func TestIndexMatchesLinearEvaluation(t *testing.T) {
	p := fig3Policy(t)
	idx := NewIndex(p)
	reqs := []*Request{
		{Subject: bo, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)`)},
		{Subject: bo, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(count=3)`)},
		{Subject: kate, Action: ActionCancel, JobOwner: bo,
			Spec: spec(t, `&(executable=test2)(jobtag=NFC)`)},
		{Subject: sam, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(jobtag=ADS)`)},
		{Subject: ext, Action: ActionSignal},
	}
	for i, req := range reqs {
		lin := p.Evaluate(req)
		ind := idx.Evaluate(req)
		if lin.Allowed != ind.Allowed || lin.Applicable != ind.Applicable {
			t.Errorf("request %d: linear (%v,%v) != indexed (%v,%v)",
				i, lin.Allowed, lin.Applicable, ind.Allowed, ind.Applicable)
		}
	}
}

// Property: for randomly shaped requests, indexed and linear evaluation
// agree on the fig3 policy plus a group requirement.
func TestQuickIndexEquivalence(t *testing.T) {
	p := fig3Policy(t)
	idx := NewIndex(p)
	subjects := []struct{ dn string }{
		{string(bo)}, {string(kate)}, {string(sam)}, {string(ext)},
	}
	actions := []string{ActionStart, ActionCancel, ActionInformation, ActionSignal}
	exes := []string{"test1", "test2", "TRANSP", "rm"}
	tags := []string{"ADS", "NFC", ""}
	f := func(s, a, e, tg, count uint8) bool {
		sp := rsl.NewSpec().
			Set("executable", exes[int(e)%len(exes)]).
			Set("directory", "/sandbox/test").
			Set("count", itoa(int(count)%6))
		if tag := tags[int(tg)%len(tags)]; tag != "" {
			sp.Set("jobtag", tag)
		}
		req := &Request{
			Subject:  gsi.DN(subjects[int(s)%len(subjects)].dn),
			Action:   actions[int(a)%len(actions)],
			Spec:     sp,
			JobOwner: bo,
		}
		lin := p.Evaluate(req)
		ind := idx.Evaluate(req)
		return lin.Allowed == ind.Allowed && lin.Applicable == ind.Applicable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIndexApplicableToBucketsGroups(t *testing.T) {
	p := fig3Policy(t)
	idx := NewIndex(p)
	// Bo gets the group requirement plus her own statement.
	if got := len(idx.ApplicableTo(bo)); got != 2 {
		t.Errorf("ApplicableTo(bo) = %d, want 2", got)
	}
	// Sam gets only the group requirement.
	if got := len(idx.ApplicableTo(sam)); got != 1 {
		t.Errorf("ApplicableTo(sam) = %d, want 1", got)
	}
	// Outsiders get nothing.
	if got := len(idx.ApplicableTo(ext)); got != 0 {
		t.Errorf("ApplicableTo(ext) = %d, want 0", got)
	}
}
