package policy

import (
	"reflect"
	"testing"
	"testing/quick"

	"gridauth/internal/gsi"
	"gridauth/internal/rsl"
)

func TestCompiledMatchesLinearEvaluation(t *testing.T) {
	p := fig3Policy(t)
	c := Compile(p)
	reqs := []*Request{
		{Subject: bo, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)`)},
		{Subject: bo, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(count=3)`)},
		{Subject: kate, Action: ActionCancel, JobOwner: bo,
			Spec: spec(t, `&(executable=test2)(jobtag=NFC)`)},
		{Subject: sam, Action: ActionStart,
			Spec: spec(t, `&(executable=test1)(jobtag=ADS)`)},
		{Subject: ext, Action: ActionSignal},
	}
	for i, req := range reqs {
		lin := p.Evaluate(req)
		com := c.Evaluate(req)
		if lin != com {
			t.Errorf("request %d: linear %+v != compiled %+v", i, lin, com)
		}
	}
}

// Property: for randomly shaped requests, compiled and linear evaluation
// return identical decisions (all fields) on the fig3 policy.
func TestQuickCompiledEquivalence(t *testing.T) {
	p := fig3Policy(t)
	c := Compile(p)
	subjects := []gsi.DN{bo, kate, sam, ext}
	actions := []string{ActionStart, ActionCancel, ActionInformation, ActionSignal}
	exes := []string{"test1", "test2", "TRANSP", "rm"}
	tags := []string{"ADS", "NFC", ""}
	f := func(s, a, e, tg, count uint8) bool {
		sp := rsl.NewSpec().
			Set("executable", exes[int(e)%len(exes)]).
			Set("directory", "/sandbox/test").
			Set("count", itoa(int(count)%6))
		if tag := tags[int(tg)%len(tags)]; tag != "" {
			sp.Set("jobtag", tag)
		}
		req := &Request{
			Subject:  subjects[int(s)%len(subjects)],
			Action:   actions[int(a)%len(actions)],
			Spec:     sp,
			JobOwner: bo,
		}
		return p.Evaluate(req) == c.Evaluate(req)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompiledApplicableToBucketsGroups(t *testing.T) {
	p := fig3Policy(t)
	c := Compile(p)
	// Bo gets the group requirement plus her own statement.
	if got := len(c.ApplicableTo(bo)); got != 2 {
		t.Errorf("ApplicableTo(bo) = %d, want 2", got)
	}
	// Sam gets only the group requirement.
	if got := len(c.ApplicableTo(sam)); got != 1 {
		t.Errorf("ApplicableTo(sam) = %d, want 1", got)
	}
	// Outsiders get nothing.
	if got := len(c.ApplicableTo(ext)); got != 0 {
		t.Errorf("ApplicableTo(ext) = %d, want 0", got)
	}
}

// The former Index type treated any subject carrying a CN as exact-only,
// missing statements whose subject is a proper string prefix of a longer
// identity (a CN that extends another, or proxy-suffixed names). The
// sorted-prefix machinery must find them, matching Policy.ApplicableTo.
func TestCompiledApplicableToCNProperPrefix(t *testing.T) {
	p := MustParse(`
/O=Grid/CN=Bo: &(action = start)(executable = probe)
/O=Grid/CN=Bo Liu: &(action = start)(executable = test1)
`, "local")
	c := Compile(p)
	for _, id := range []gsi.DN{
		"/O=Grid/CN=Bo",
		"/O=Grid/CN=Bo Liu",
		"/O=Grid/CN=Bo Liu/CN=proxy",
		"/O=Grid/CN=Bob",
		"/O=Grid/CN=Alice",
	} {
		want := p.ApplicableTo(id)
		got := c.ApplicableTo(id)
		if len(want) != len(got) {
			t.Fatalf("%s: linear %d statements, compiled %d", id, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("%s: statement %d differs: %s vs %s",
					id, i, want[i].Subject, got[i].Subject)
			}
		}
	}
}

// Property: ApplicableTo agrees with the linear scan for arbitrarily
// nested subject prefixes and identities built from the same path parts.
func TestQuickCompiledApplicableTo(t *testing.T) {
	parts := []string{"/O=Grid", "/OU=a", "/OU=ab", "/CN=u", "/CN=u2"}
	build := func(mask uint8) string {
		s := ""
		for i, p := range parts {
			if mask&(1<<i) != 0 {
				s += p
			}
		}
		return s
	}
	var stmts []*Statement
	for mask := uint8(1); mask < 1<<len(parts); mask += 3 {
		subj := build(mask)
		if subj == "" {
			continue
		}
		stmts = append(stmts, &Statement{
			Subject: gsi.DN(subj),
			Sets: []*AssertionSet{{Clauses: []*rsl.Relation{
				{Attribute: "action", Op: rsl.OpEq, Values: []rsl.Value{rsl.Lit("start")}},
				{Attribute: "executable", Op: rsl.OpEq, Values: []rsl.Value{rsl.Lit("x")}},
			}}},
		})
	}
	p := &Policy{Source: "local", Statements: stmts}
	c := Compile(p)
	f := func(mask uint8) bool {
		id := gsi.DN(build(mask % (1 << len(parts))))
		want := p.ApplicableTo(id)
		got := c.ApplicableTo(id)
		if len(want) == 0 && len(got) == 0 {
			return true
		}
		return reflect.DeepEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSubjectIndexLongestPrefix(t *testing.T) {
	keys := []string{"/a", "/a/b", "/a/b/c", "/a/bd", "/x"}
	x := buildSubjectIndex(keys)
	tests := []struct {
		id   string
		want string // "" = no match
	}{
		// Prefixes are plain string prefixes (gsi.DN.HasPrefix), not
		// path components: "/a/b/c" prefixes "/a/b/cd".
		{"/a/b/c/d", "/a/b/c"},
		{"/a/b/cd", "/a/b/c"},
		{"/a/bd/e", "/a/bd"},
		{"/a/bx", "/a/b"},
		{"/x/y", "/x"},
		{"/y", ""},
		{"/", ""},
		{"", ""},
	}
	for _, tt := range tests {
		j := x.longestPrefix(tt.id)
		got := ""
		if j >= 0 {
			got = x.keys[j]
		}
		if got != tt.want {
			t.Errorf("longestPrefix(%q) = %q, want %q", tt.id, got, tt.want)
		}
	}
	if x.groups != 2 { // "/a" and "/a/b" prefix other keys
		t.Errorf("groups = %d, want 2", x.groups)
	}
}
