package policy

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gridauth/internal/gsi"
	"gridauth/internal/rsl"
)

// ParseError reports a malformed policy file.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("policy: line %d: %s", e.Line, e.Msg)
}

// Parse reads a policy in the paper's file format (Figure 3):
//
//	# comment
//	/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = start)(jobtag != NULL)
//
//	/O=Grid/.../CN=Bo Liu:
//	  &(action = start)(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count<4)
//	  &(action = start)(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count<4)
//
// A statement starts on a line containing "SUBJECT:"; subsequent lines
// beginning with '&' or '(' continue the current statement. A leading '&'
// before the subject (as rendered in the paper's figure) is accepted and
// ignored. Within a statement, each '&'-introduced conjunction is one
// assertion set; a bare parenthesized sequence forms a single implicit
// set.
func Parse(r io.Reader, source string) (*Policy, error) {
	p := &Policy{Source: source}
	var (
		current *Statement
		buf     strings.Builder // pending assertion text of current
		curLine int
		marks   []lineMark // buf offset → source line, one per appended line
	)
	flush := func() error {
		if current == nil {
			return nil
		}
		sets, err := parseSets(buf.String(), marks)
		if err != nil {
			return &ParseError{Line: curLine, Msg: err.Error()}
		}
		if len(sets) == 0 {
			return &ParseError{Line: curLine, Msg: fmt.Sprintf("statement for %q has no assertions", current.Subject)}
		}
		current.Sets = sets
		p.Statements = append(p.Statements, current)
		current = nil
		buf.Reset()
		marks = marks[:0]
		return nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if subj, rest, ok := splitStatementHeader(line); ok {
			if err := flush(); err != nil {
				return nil, err
			}
			dn := gsi.DN(subj)
			if !dn.Valid() {
				return nil, &ParseError{Line: lineNo, Msg: fmt.Sprintf("invalid subject %q", subj)}
			}
			current = &Statement{Subject: dn, Line: lineNo}
			curLine = lineNo
			marks = append(marks, lineMark{off: buf.Len(), line: lineNo})
			buf.WriteString(rest)
			buf.WriteString(" ")
			continue
		}
		if current == nil {
			return nil, &ParseError{Line: lineNo, Msg: "assertion text before any statement subject"}
		}
		if line[0] != '&' && line[0] != '(' {
			return nil, &ParseError{Line: lineNo, Msg: fmt.Sprintf("unexpected continuation %q", line)}
		}
		marks = append(marks, lineMark{off: buf.Len(), line: lineNo})
		buf.WriteString(line)
		buf.WriteString(" ")
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("policy: read: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseString parses a policy from a string.
func ParseString(s, source string) (*Policy, error) {
	return Parse(strings.NewReader(s), source)
}

// MustParse parses a policy and panics on error. For tests and fixtures.
func MustParse(s, source string) *Policy {
	p, err := ParseString(s, source)
	if err != nil {
		panic(err)
	}
	return p
}

// splitStatementHeader recognizes "SUBJECT: rest". The subject must look
// like a DN (start with '/' or '&/') and the colon must come before any
// parenthesis, so relation text like "(action = start)" is never mistaken
// for a header.
func splitStatementHeader(line string) (subject, rest string, ok bool) {
	trimmed := strings.TrimPrefix(line, "&")
	trimmed = strings.TrimSpace(trimmed)
	if !strings.HasPrefix(trimmed, "/") {
		return "", "", false
	}
	colon := strings.Index(trimmed, ":")
	if colon < 0 {
		return "", "", false
	}
	if paren := strings.Index(trimmed, "("); paren >= 0 && paren < colon {
		return "", "", false
	}
	return strings.TrimSpace(trimmed[:colon]), strings.TrimSpace(trimmed[colon+1:]), true
}

// lineMark maps an offset into the accumulated assertion text of one
// statement back to the 1-based source line the text came from.
type lineMark struct {
	off  int
	line int
}

// lineFor returns the source line for an offset into the accumulated
// text, or 0 when no marks cover it (text assembled without positions).
func lineFor(marks []lineMark, off int) int {
	line := 0
	for _, m := range marks {
		if m.off > off {
			break
		}
		line = m.line
	}
	return line
}

// parseSets splits assertion text into '&'-delimited conjunctions and
// parses each as RSL. marks (may be nil) recovers each set's source line.
func parseSets(text string, marks []lineMark) ([]*AssertionSet, error) {
	if strings.TrimSpace(text) == "" {
		return nil, nil
	}
	chunks, err := splitTopLevel(text)
	if err != nil {
		return nil, err
	}
	sets := make([]*AssertionSet, 0, len(chunks))
	for _, chunk := range chunks {
		node, err := rsl.Parse("&" + chunk.text)
		if err != nil {
			return nil, fmt.Errorf("assertion set %q: %w", chunk.text, err)
		}
		set, err := setFromNode(node)
		if err != nil {
			return nil, fmt.Errorf("assertion set %q: %w", chunk.text, err)
		}
		set.Line = lineFor(marks, chunk.off)
		sets = append(sets, set)
	}
	return sets, nil
}

// chunk is one top-level parenthesized conjunction plus the offset of
// its first '(' in the text it was split from.
type chunk struct {
	text string
	off  int
}

// splitTopLevel splits "&(...)(...) &(...)" into chunks of parenthesized
// relations, honoring nesting and quotes.
func splitTopLevel(text string) ([]chunk, error) {
	var (
		chunks  []chunk
		start   = -1
		depth   = 0
		inQuote byte
	)
	flush := func(end int) {
		if start >= 0 {
			c := strings.TrimSpace(text[start:end])
			if c != "" {
				chunks = append(chunks, chunk{text: c, off: start})
			}
		}
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inQuote = c
		case '(':
			if depth == 0 && start < 0 {
				start = i
			}
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ')'")
			}
		case '&':
			if depth == 0 {
				flush(i)
				start = -1
			}
		}
	}
	if depth != 0 || inQuote != 0 {
		return nil, fmt.Errorf("unbalanced parentheses or quote")
	}
	flush(len(text))
	return chunks, nil
}

// setFromNode flattens a parsed conjunction into an AssertionSet.
func setFromNode(node rsl.Node) (*AssertionSet, error) {
	set := &AssertionSet{}
	var walk func(n rsl.Node) error
	walk = func(n rsl.Node) error {
		switch v := n.(type) {
		case *rsl.Relation:
			set.Clauses = append(set.Clauses, v)
			return nil
		case *rsl.Boolean:
			if v.Op != rsl.And {
				return fmt.Errorf("policy assertions must be conjunctions, found %q", v.Op)
			}
			for _, c := range v.Children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("unknown RSL node %T", n)
		}
	}
	if err := walk(node); err != nil {
		return nil, err
	}
	return set, nil
}
