// Package policy implements the fine-grain authorization policy language
// of Keahey et al. (Middleware 2003): policies expressed in terms of RSL
// over job invocation and management requests.
//
// # Model
//
// A policy is a list of statements. Each statement binds a subject — a
// Grid identity or an identity prefix naming a group ("a group of users
// whose Grid identities start with the string") — to one or more
// assertion sets. An assertion set is a conjunction of RSL relations,
// always selected by an "action" relation (start, cancel, information,
// signal). The language extends RSL with the attributes action, jobowner
// and jobtag and with the values NULL (non-empty / absent marker) and
// self (the requesting identity).
//
// The paper's semantics are default-deny: "unless a specific stipulation
// has been made, an action will not be allowed." This package makes the
// informal semantics precise in the way that reproduces every narrated
// example of the paper's Figure 3:
//
//   - A clause is POSITIVE when it can grant: (attr = v1 v2 ...) with
//     literal values.
//   - A clause is RESTRICTIVE when it can only forbid, limit or demand
//     shape: (attr != NULL) requires the attribute to be present and
//     non-empty; (attr = NULL) forbids the attribute; (attr != v)
//     forbids particular values; ordering clauses (attr < n, attr >= n,
//     ...) cap values when the attribute is present.
//   - An assertion set whose only non-action clauses are restrictive is a
//     REQUIREMENT SET: it grants nothing, and every request matching its
//     action from every matching subject must satisfy it. (Figure 3's
//     first statement — mcs.anl.gov users must supply a jobtag on start —
//     is a requirement set.)
//   - An assertion set with at least one positive clause is a GRANT SET:
//     a request is granted when it satisfies all of the set's clauses.
//     Multiple grant sets are alternatives (Bo Liu's two start rules).
//
// A request is permitted if and only if at least one applicable grant set
// is fully satisfied and every applicable requirement set is satisfied.
//
// Attributes not mentioned by a matching grant set are unconstrained,
// matching the paper's usage (Kate Keahey's TRANSP rule does not mention
// count, so any count is acceptable). Equality clauses require the
// attribute to be present; ordering clauses are limits that apply only
// when the attribute is present.
package policy

import (
	"fmt"
	"strings"

	"gridauth/internal/gsi"
	"gridauth/internal/rsl"
)

// Action names used by GRAM job management, mirroring §5.1 of the paper.
const (
	ActionStart       = "start"
	ActionCancel      = "cancel"
	ActionInformation = "information"
	ActionSignal      = "signal"
)

// Special values defined by the language extension.
const (
	ValueNull = "NULL"
	ValueSelf = "self"
)

// Reserved attribute names introduced by the language extension.
const (
	AttrAction   = "action"
	AttrJobowner = "jobowner"
	AttrJobtag   = "jobtag"
)

// Policy is an ordered list of statements from a single administrative
// source (the resource owner, or a VO).
type Policy struct {
	// Source labels where the policy came from, e.g. "local" or "VO:NFC".
	Source string
	// Statements in file order.
	Statements []*Statement
}

// Statement binds a subject prefix to assertion sets.
type Statement struct {
	// Subject is a Grid identity or identity prefix. A statement applies
	// to every identity that begins with Subject.
	Subject gsi.DN
	// Sets holds the statement's assertion sets.
	Sets []*AssertionSet
	// Line is the 1-based source line of the statement header in the
	// policy file it was parsed from, or 0 for statements built in code.
	Line int
}

// AssertionSet is one conjunction of relations.
type AssertionSet struct {
	// Clauses holds every relation of the set, including the action
	// selector.
	Clauses []*rsl.Relation
	// Line is the 1-based source line the set's text starts on in the
	// policy file it was parsed from, or 0 for sets built in code.
	Line int
}

// Actions returns the action values the set is selected by. An empty
// result means the set applies to every action.
func (s *AssertionSet) Actions() []string {
	for _, c := range s.Clauses {
		if c.Attribute == AttrAction && c.Op == rsl.OpEq {
			vals := make([]string, 0, len(c.Values))
			for _, v := range c.Values {
				vals = append(vals, v.Literal)
			}
			return vals
		}
	}
	return nil
}

// IsRequirement reports whether the set is a requirement set: it contains
// no positive (granting) clauses besides the action selector.
func (s *AssertionSet) IsRequirement() bool {
	for _, c := range s.Clauses {
		if c.Attribute == AttrAction {
			continue
		}
		if clausePositive(c) {
			return false
		}
	}
	return true
}

func clausePositive(c *rsl.Relation) bool {
	// Only equality with literal values grants. Ordering clauses are
	// LIMITS: "(count<=64)" caps count wherever it applies but never by
	// itself authorizes anything — otherwise a site-wide cap statement
	// like "/O=Grid: &(action=start)(count<=64)" would accidentally
	// grant every small job to everyone, violating default deny. Every
	// grant in the paper's Figure 3 carries at least one equality clause
	// (executable, jobtag, directory), so this reading reproduces all of
	// its narrated decisions.
	if c.Op != rsl.OpEq {
		return false
	}
	return !(len(c.Values) == 1 && c.Values[0].Literal == ValueNull)
}

// Unparse renders the assertion set in policy syntax.
func (s *AssertionSet) Unparse() string {
	var sb strings.Builder
	sb.WriteString("&")
	for _, c := range s.Clauses {
		sb.WriteString(c.Unparse())
	}
	return sb.String()
}

// Unparse renders the statement in policy file syntax.
func (st *Statement) Unparse() string {
	var sb strings.Builder
	sb.WriteString(string(st.Subject))
	sb.WriteString(": ")
	for i, set := range st.Sets {
		if i > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(set.Unparse())
	}
	return sb.String()
}

// Unparse renders the whole policy in file syntax.
func (p *Policy) Unparse() string {
	var sb strings.Builder
	for _, st := range p.Statements {
		sb.WriteString(st.Unparse())
		sb.WriteString("\n")
	}
	return sb.String()
}

// Statement lookup -----------------------------------------------------

// ApplicableTo returns the statements whose subject is a prefix of
// identity, in policy order.
func (p *Policy) ApplicableTo(identity gsi.DN) []*Statement {
	var out []*Statement
	for _, st := range p.Statements {
		if identity.HasPrefix(st.Subject) {
			out = append(out, st)
		}
	}
	return out
}

// Merge returns a new policy containing the statements of p followed by
// those of others. The merged policy keeps p's source label.
func (p *Policy) Merge(others ...*Policy) *Policy {
	merged := &Policy{Source: p.Source}
	merged.Statements = append(merged.Statements, p.Statements...)
	for _, o := range others {
		merged.Statements = append(merged.Statements, o.Statements...)
	}
	return merged
}

// Request is the authorization question put to a policy: may subject
// perform action on a job?
type Request struct {
	// Subject is the verified Grid identity of the requester.
	Subject gsi.DN
	// Action is one of the Action* constants.
	Action string
	// JobOwner is the Grid identity that initiated the job the request
	// targets. Empty for job startup (the subject is starting its own).
	JobOwner gsi.DN
	// Spec is the job description (for start) or the description of the
	// targeted job (for management actions). May be nil for management
	// actions when the JMI did not retain the description.
	Spec *rsl.Spec
}

// attrValues resolves the request's values for a policy attribute,
// synthesizing the extension attributes.
func (r *Request) attrValues(attr string) []string {
	switch attr {
	case AttrAction:
		return []string{r.Action}
	case AttrJobowner:
		owner := r.JobOwner
		if owner == "" {
			owner = r.Subject
		}
		return []string{string(owner)}
	default:
		if r.Spec == nil {
			return nil
		}
		return r.Spec.Values(attr)
	}
}

// Decision is the outcome of evaluating a request against a policy.
type Decision struct {
	// Allowed reports whether the request is permitted.
	Allowed bool
	// Applicable reports whether the policy had anything to say about
	// GRANTING this subject/action pair: true when a grant set applied
	// (whether or not it was satisfied) or a requirement was violated.
	// When false, the policy abstains — it neither grants nor objects —
	// which matters when several administrative sources combine: a
	// resource-owner policy that only states restrictions abstains from
	// granting and leaves that to the VO, while overall default-deny is
	// restored by the combiner requiring at least one source to grant.
	Applicable bool
	// Source is the label of the deciding policy.
	Source string
	// GrantedBy identifies the statement/set that granted the request,
	// as "subject#set", when Allowed.
	GrantedBy string
	// Reason explains a denial (or names the grant).
	Reason string
}

// Evaluate decides a request against the policy using the semantics
// described in the package documentation.
func (p *Policy) Evaluate(req *Request) Decision {
	return evaluateStatements(p.Source, p.ApplicableTo(req.Subject), req)
}

func evaluateStatements(source string, stmts []*Statement, req *Request) Decision {
	var (
		granted    bool
		grantedBy  string
		violations []string
		denials    []string
		sawGrant   bool
	)
	for _, st := range stmts {
		for i, set := range st.Sets {
			if !set.actionMatches(req) {
				continue
			}
			if set.IsRequirement() {
				if msg := set.satisfy(req); msg != "" {
					violations = append(violations,
						fmt.Sprintf("requirement %s#%d: %s", st.Subject, i, msg))
				}
				continue
			}
			sawGrant = true
			if msg := set.satisfy(req); msg == "" {
				if !granted {
					granted = true
					grantedBy = fmt.Sprintf("%s#%d", st.Subject, i)
				}
			} else {
				denials = append(denials, fmt.Sprintf("%s#%d: %s", st.Subject, i, msg))
			}
		}
	}
	switch {
	case len(violations) > 0:
		return Decision{
			Applicable: true,
			Source:     source,
			Reason:     "requirement violated: " + strings.Join(violations, "; "),
		}
	case granted:
		return Decision{
			Allowed:    true,
			Applicable: true,
			Source:     source,
			GrantedBy:  grantedBy,
			Reason:     "granted by " + grantedBy,
		}
	case sawGrant:
		return Decision{
			Applicable: true,
			Source:     source,
			Reason:     "no grant satisfied: " + strings.Join(denials, "; "),
		}
	default:
		return Decision{
			Source: source,
			Reason: fmt.Sprintf("no policy statement grants %q to %s (default deny)", req.Action, req.Subject),
		}
	}
}

// actionMatches reports whether the set's action selector admits the
// request's action.
func (s *AssertionSet) actionMatches(req *Request) bool {
	for _, c := range s.Clauses {
		if c.Attribute != AttrAction {
			continue
		}
		if !clauseSatisfied(c, req) {
			return false
		}
	}
	return true
}

// Satisfied reports whether the request meets every clause of the set
// (including the action selector). The string explains the first failing
// clause on a false result. Exported for engines that embed assertion
// sets as raw constraints (e.g. Akenti use conditions).
func (s *AssertionSet) Satisfied(req *Request) (bool, string) {
	if !s.actionMatches(req) {
		return false, "action selector does not match"
	}
	if msg := s.satisfy(req); msg != "" {
		return false, msg
	}
	return true, ""
}

// satisfy checks every non-action clause; it returns "" when the set is
// satisfied and a human-readable explanation of the first failure
// otherwise.
func (s *AssertionSet) satisfy(req *Request) string {
	for _, c := range s.Clauses {
		if c.Attribute == AttrAction {
			continue
		}
		if !clauseSatisfied(c, req) {
			return fmt.Sprintf("clause %s not satisfied", c.Unparse())
		}
	}
	return ""
}

// clauseSatisfied evaluates one relation against the request.
func clauseSatisfied(c *rsl.Relation, req *Request) bool {
	have := req.attrValues(c.Attribute)

	// Resolve policy-side values: `self` becomes the requesting identity.
	want := make([]string, 0, len(c.Values))
	isNull := false
	for _, v := range c.Values {
		switch v.Literal {
		case ValueNull:
			isNull = true
		case ValueSelf:
			want = append(want, string(req.Subject))
		default:
			want = append(want, v.Resolve(nil))
		}
	}

	switch c.Op {
	case rsl.OpEq:
		if isNull && len(want) == 0 {
			// (attr = NULL): the request must not contain the attribute.
			return len(have) == 0
		}
		// (attr = v1 v2 ...): attribute must be present and every request
		// value must be among the permitted values.
		if len(have) == 0 {
			return false
		}
		for _, h := range have {
			if !containsString(want, h) {
				return false
			}
		}
		return true
	case rsl.OpNeq:
		if isNull && len(want) == 0 {
			// (attr != NULL): the attribute must be present with every
			// value non-empty. A request that smuggles an empty value
			// alongside non-empty ones does not satisfy the requirement.
			if len(have) == 0 {
				return false
			}
			for _, h := range have {
				if h == "" {
					return false
				}
			}
			return true
		}
		// (attr != v ...): no request value may be among the forbidden
		// values. An absent attribute trivially satisfies.
		for _, h := range have {
			if containsString(want, h) {
				return false
			}
		}
		return true
	case rsl.OpLt, rsl.OpLe, rsl.OpGt, rsl.OpGe:
		// Ordering clauses are limits: they apply when the attribute is
		// present; an absent attribute is unconstrained.
		for _, h := range have {
			for _, w := range want {
				if !rsl.Compare(h, c.Op, w) {
					return false
				}
			}
		}
		return true
	default:
		return false
	}
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
