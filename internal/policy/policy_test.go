package policy

import (
	"strings"
	"testing"
	"testing/quick"

	"gridauth/internal/gsi"
	"gridauth/internal/rsl"
)

// Figure 3 of the paper, with the figure's DN typos normalized
// ("GlobusOU" -> "Globus/OU", spacing inside CNs). See EXPERIMENTS.md E3.
const fig3 = `
# Simple VO-wide policy for job management (Figure 3)
/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = start)(jobtag != NULL)

/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu:
  &(action = start)(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count<4)
  &(action = start)(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count<4)

/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey:
  &(action = start)(executable = TRANSP)(directory = /sandbox/test)(jobtag = NFC)
  &(action=cancel)(jobtag=NFC)
`

const (
	bo   = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu")
	kate = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")
	sam  = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Sam Meder")
	ext  = gsi.DN("/O=Grid/O=Other/CN=Outsider")
)

func fig3Policy(t *testing.T) *Policy {
	t.Helper()
	p, err := ParseString(fig3, "VO:NFC")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func spec(t *testing.T, in string) *rsl.Spec {
	t.Helper()
	s, err := rsl.ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseFig3Shape(t *testing.T) {
	p := fig3Policy(t)
	if len(p.Statements) != 3 {
		t.Fatalf("statements = %d, want 3", len(p.Statements))
	}
	group := p.Statements[0]
	if group.Subject != "/O=Grid/O=Globus/OU=mcs.anl.gov" {
		t.Errorf("group subject = %s", group.Subject)
	}
	if len(group.Sets) != 1 || !group.Sets[0].IsRequirement() {
		t.Errorf("group statement should be a single requirement set")
	}
	boSt := p.Statements[1]
	if len(boSt.Sets) != 2 {
		t.Fatalf("Bo Liu sets = %d, want 2", len(boSt.Sets))
	}
	for i, set := range boSt.Sets {
		if set.IsRequirement() {
			t.Errorf("Bo set %d should be a grant set", i)
		}
		acts := set.Actions()
		if len(acts) != 1 || acts[0] != ActionStart {
			t.Errorf("Bo set %d actions = %v", i, acts)
		}
	}
	kateSt := p.Statements[2]
	if len(kateSt.Sets) != 2 {
		t.Fatalf("Kate sets = %d, want 2", len(kateSt.Sets))
	}
	if got := kateSt.Sets[1].Actions(); len(got) != 1 || got[0] != ActionCancel {
		t.Errorf("Kate set 1 actions = %v", got)
	}
}

// TestFig3Decisions walks the decision table narrated in §5.1 around
// Figure 3.
func TestFig3Decisions(t *testing.T) {
	p := fig3Policy(t)
	tests := []struct {
		name  string
		req   *Request
		allow bool
	}{
		{
			name: "bo starts test1 with ADS jobtag under count limit",
			req: &Request{Subject: bo, Action: ActionStart,
				Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)`)},
			allow: true,
		},
		{
			name: "bo starts test2 with NFC jobtag",
			req: &Request{Subject: bo, Action: ActionStart,
				Spec: spec(t, `&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=1)`)},
			allow: true,
		},
		{
			name: "bo exceeds processor count",
			req: &Request{Subject: bo, Action: ActionStart,
				Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)`)},
			allow: false,
		},
		{
			name: "bo starts unsanctioned executable",
			req: &Request{Subject: bo, Action: ActionStart,
				Spec: spec(t, `&(executable=test3)(directory=/sandbox/test)(jobtag=ADS)(count=1)`)},
			allow: false,
		},
		{
			name: "bo starts from wrong directory",
			req: &Request{Subject: bo, Action: ActionStart,
				Spec: spec(t, `&(executable=test1)(directory=/home/bliu)(jobtag=ADS)(count=1)`)},
			allow: false,
		},
		{
			name: "bo mixes executable and jobtag across sets",
			req: &Request{Subject: bo, Action: ActionStart,
				Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=NFC)(count=1)`)},
			allow: false,
		},
		{
			name: "bo omits the jobtag the group requirement demands",
			req: &Request{Subject: bo, Action: ActionStart,
				Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(count=1)`)},
			allow: false,
		},
		{
			name: "kate starts TRANSP with any processor count",
			req: &Request{Subject: kate, Action: ActionStart,
				Spec: spec(t, `&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=128)`)},
			allow: true,
		},
		{
			name: "kate cancels bo's NFC job (VO-wide management)",
			req: &Request{Subject: kate, Action: ActionCancel, JobOwner: bo,
				Spec: spec(t, `&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=1)`)},
			allow: true,
		},
		{
			name: "kate cannot cancel an ADS job",
			req: &Request{Subject: kate, Action: ActionCancel, JobOwner: bo,
				Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=1)`)},
			allow: false,
		},
		{
			name: "bo cannot cancel kate's job",
			req: &Request{Subject: bo, Action: ActionCancel, JobOwner: kate,
				Spec: spec(t, `&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)`)},
			allow: false,
		},
		{
			name: "group member without a grant is denied (default deny)",
			req: &Request{Subject: sam, Action: ActionStart,
				Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=1)`)},
			allow: false,
		},
		{
			name: "outsider is denied",
			req: &Request{Subject: ext, Action: ActionStart,
				Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=1)`)},
			allow: false,
		},
		{
			name: "kate queries information without a grant",
			req: &Request{Subject: kate, Action: ActionInformation, JobOwner: bo,
				Spec: spec(t, `&(executable=test2)(jobtag=NFC)`)},
			allow: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := p.Evaluate(tt.req)
			if d.Allowed != tt.allow {
				t.Errorf("Allowed = %v, want %v (reason: %s)", d.Allowed, tt.allow, d.Reason)
			}
			if d.Allowed && d.GrantedBy == "" {
				t.Errorf("permit without GrantedBy")
			}
			if !d.Allowed && d.Reason == "" {
				t.Errorf("deny without Reason")
			}
			if d.Source != "VO:NFC" {
				t.Errorf("Source = %q", d.Source)
			}
		})
	}
}

func TestSelfValue(t *testing.T) {
	// The stock GT2 rule "only the job initiator may manage a job" is
	// expressible in the language via self.
	p := MustParse(`
/O=Grid: &(action = cancel information signal)(jobowner = self)
`, "local")
	ownJob := &Request{Subject: bo, Action: ActionCancel, JobOwner: bo}
	if d := p.Evaluate(ownJob); !d.Allowed {
		t.Errorf("self-cancel denied: %s", d.Reason)
	}
	othersJob := &Request{Subject: bo, Action: ActionCancel, JobOwner: kate}
	if d := p.Evaluate(othersJob); d.Allowed {
		t.Errorf("cancel of other's job allowed via self rule")
	}
	// Startup has JobOwner empty; jobowner resolves to the subject, so a
	// self rule for start is a tautology but must not misfire.
	start := &Request{Subject: bo, Action: ActionStart, Spec: rsl.NewSpec().Set("executable", "x")}
	if d := p.Evaluate(start); d.Allowed {
		t.Errorf("start allowed by management-only rule")
	}
}

func TestRequiredAbsenceAndProhibitedValues(t *testing.T) {
	// §5.1: "the job request must not specify a particular queue, which
	// is reserved for ... certain users" and required absence via
	// (attr = NULL).
	p := MustParse(`
/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = start)(queue != fast)
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = test1)(debug = NULL)
`, "local")
	ok := &Request{Subject: bo, Action: ActionStart, Spec: spec(t, `&(executable=test1)(queue=batch)`)}
	if d := p.Evaluate(ok); !d.Allowed {
		t.Errorf("allowed request denied: %s", d.Reason)
	}
	noQueue := &Request{Subject: bo, Action: ActionStart, Spec: spec(t, `&(executable=test1)`)}
	if d := p.Evaluate(noQueue); !d.Allowed {
		t.Errorf("queueless request denied: %s", d.Reason)
	}
	reserved := &Request{Subject: bo, Action: ActionStart, Spec: spec(t, `&(executable=test1)(queue=fast)`)}
	if d := p.Evaluate(reserved); d.Allowed {
		t.Errorf("reserved queue allowed")
	}
	withDebug := &Request{Subject: bo, Action: ActionStart, Spec: spec(t, `&(executable=test1)(debug=on)`)}
	if d := p.Evaluate(withDebug); d.Allowed {
		t.Errorf("(debug = NULL) did not forbid the attribute")
	}
}

func TestMultiValuePermittedSet(t *testing.T) {
	p := MustParse(`
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = test1 test2)
`, "local")
	for _, exe := range []string{"test1", "test2"} {
		req := &Request{Subject: bo, Action: ActionStart, Spec: rsl.NewSpec().Set("executable", exe)}
		if d := p.Evaluate(req); !d.Allowed {
			t.Errorf("executable %s denied: %s", exe, d.Reason)
		}
	}
	req := &Request{Subject: bo, Action: ActionStart, Spec: rsl.NewSpec().Set("executable", "test3")}
	if d := p.Evaluate(req); d.Allowed {
		t.Errorf("executable outside the permitted set allowed")
	}
}

func TestOrderingLimits(t *testing.T) {
	p := MustParse(`
/O=Grid: &(action = start)(executable = sim)(count<=8)(maxtime<60)
`, "local")
	tests := []struct {
		rslIn string
		allow bool
	}{
		{`&(executable=sim)(count=8)(maxtime=59)`, true},
		{`&(executable=sim)(count=9)(maxtime=59)`, false},
		{`&(executable=sim)(count=8)(maxtime=60)`, false},
		{`&(executable=sim)`, true}, // absent attributes are unconstrained limits
	}
	for _, tt := range tests {
		req := &Request{Subject: bo, Action: ActionStart, Spec: spec(t, tt.rslIn)}
		if d := p.Evaluate(req); d.Allowed != tt.allow {
			t.Errorf("%s: Allowed = %v, want %v (%s)", tt.rslIn, d.Allowed, tt.allow, d.Reason)
		}
	}
}

func TestRequirementAppliesAcrossStatements(t *testing.T) {
	// A requirement from the group statement must constrain grants from
	// other statements (Bo's grant alone would permit).
	p := MustParse(`
/O=Grid: &(action = start)(project != NULL)
/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = test1)
`, "local")
	without := &Request{Subject: bo, Action: ActionStart, Spec: spec(t, `&(executable=test1)`)}
	if d := p.Evaluate(without); d.Allowed {
		t.Errorf("requirement from group statement ignored")
	} else if !strings.Contains(d.Reason, "requirement") {
		t.Errorf("reason %q does not mention requirement", d.Reason)
	}
	with := &Request{Subject: bo, Action: ActionStart, Spec: spec(t, `&(executable=test1)(project=fusion)`)}
	if d := p.Evaluate(with); !d.Allowed {
		t.Errorf("satisfying request denied: %s", d.Reason)
	}
}

func TestMergeAndApplicableTo(t *testing.T) {
	vo := MustParse(`/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = a)`, "VO")
	local := MustParse(`/O=Grid: &(action = start)(queue != fast)`, "local")
	merged := vo.Merge(local)
	if len(merged.Statements) != 2 {
		t.Fatalf("merged statements = %d", len(merged.Statements))
	}
	if got := len(merged.ApplicableTo(bo)); got != 2 {
		t.Errorf("ApplicableTo(bo) = %d, want 2", got)
	}
	if got := len(merged.ApplicableTo(ext)); got != 1 {
		t.Errorf("ApplicableTo(ext) = %d, want 1 (the /O=Grid prefix)", got)
	}
}

func TestUnparseRoundTrip(t *testing.T) {
	p := fig3Policy(t)
	text := p.Unparse()
	p2, err := ParseString(text, p.Source)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if len(p2.Statements) != len(p.Statements) {
		t.Fatalf("round trip lost statements")
	}
	// Decisions must be identical after a round trip.
	req := &Request{Subject: bo, Action: ActionStart,
		Spec: spec(t, `&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)`)}
	if p.Evaluate(req).Allowed != p2.Evaluate(req).Allowed {
		t.Errorf("round trip changed decision")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`(action = start)`,                                // assertions before subject
		`not-a-dn: &(action = start)(a = b)`,              // invalid subject
		`/O=Grid:`,                                        // no assertions
		`/O=Grid: &(action = start(`,                      // unbalanced
		`/O=Grid: &(|(a=1)(b=2))`,                         // disjunction not allowed
		"/O=Grid: &(action = start)(a = b)\nrandom words", // bad continuation
	}
	for _, in := range bad {
		if _, err := ParseString(in, "t"); err == nil {
			t.Errorf("ParseString(%q): expected error", in)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := MustParse(`
# leading comment
/O=Grid: &(action = start)(executable = a) # trailing comment

# another
`, "t")
	if len(p.Statements) != 1 {
		t.Fatalf("statements = %d", len(p.Statements))
	}
}

func TestApplicableFlag(t *testing.T) {
	p := fig3Policy(t)
	// Grant set applied but unsatisfied: applicable.
	d := p.Evaluate(&Request{Subject: bo, Action: ActionStart,
		Spec: spec(t, `&(executable=test3)(directory=/sandbox/test)(jobtag=ADS)(count=1)`)})
	if d.Allowed || !d.Applicable {
		t.Errorf("unsatisfied grant: Allowed=%v Applicable=%v", d.Allowed, d.Applicable)
	}
	// No statement at all for the subject: not applicable.
	d = p.Evaluate(&Request{Subject: ext, Action: ActionStart,
		Spec: spec(t, `&(executable=test1)(jobtag=ADS)`)})
	if d.Allowed || d.Applicable {
		t.Errorf("foreign subject: Allowed=%v Applicable=%v", d.Allowed, d.Applicable)
	}
	// Requirement violated (no grant in sight): applicable — the policy
	// objects.
	reqOnly := MustParse(`/O=Grid: &(action = start)(jobtag != NULL)`, "t")
	d = reqOnly.Evaluate(&Request{Subject: bo, Action: ActionStart, Spec: spec(t, `&(executable=a)`)})
	if d.Allowed || !d.Applicable {
		t.Errorf("violated requirement: Allowed=%v Applicable=%v", d.Allowed, d.Applicable)
	}
	// Requirement satisfied, nothing granting: abstention.
	d = reqOnly.Evaluate(&Request{Subject: bo, Action: ActionStart, Spec: spec(t, `&(executable=a)(jobtag=x)`)})
	if d.Allowed || d.Applicable {
		t.Errorf("satisfied requirement only: Allowed=%v Applicable=%v", d.Allowed, d.Applicable)
	}
}

func TestEvaluateNilSpec(t *testing.T) {
	// Management requests may carry no job description; clauses over job
	// attributes must fail closed for equality, stay open for limits.
	p := MustParse(`/O=Grid: &(action = cancel)(jobtag = NFC)`, "t")
	req := &Request{Subject: bo, Action: ActionCancel, JobOwner: kate}
	if d := p.Evaluate(req); d.Allowed {
		t.Errorf("nil spec satisfied (jobtag = NFC)")
	}
}

// Property: the default-deny axiom — a policy with no statements for the
// subject's identity never permits anything.
func TestQuickDefaultDeny(t *testing.T) {
	p := fig3Policy(t)
	f := func(user uint16, action uint8, exe uint8) bool {
		subject := gsi.DN("/O=Unrelated/CN=user" + string(rune('a'+user%26)))
		actions := []string{ActionStart, ActionCancel, ActionInformation, ActionSignal}
		req := &Request{
			Subject: subject,
			Action:  actions[int(action)%len(actions)],
			Spec:    rsl.NewSpec().Set("executable", "exe"+string(rune('a'+exe%26))).Set("jobtag", "NFC"),
		}
		return !p.Evaluate(req).Allowed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding a grant statement never turns a previously permitted
// request into a denial unless it introduces a requirement (monotonicity
// of grants).
func TestQuickGrantMonotonic(t *testing.T) {
	base := fig3Policy(t)
	extra := MustParse(`/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu: &(action = start)(executable = extra)`, "VO:NFC")
	merged := base.Merge(extra)
	f := func(count uint8, tag uint8) bool {
		tags := []string{"ADS", "NFC", "OTHER"}
		req := &Request{Subject: bo, Action: ActionStart,
			Spec: rsl.NewSpec().
				Set("executable", "test1").
				Set("directory", "/sandbox/test").
				Set("jobtag", tags[int(tag)%len(tags)]).
				Set("count", itoa(int(count)%6)),
		}
		before := base.Evaluate(req).Allowed
		after := merged.Evaluate(req).Allowed
		return !before || after
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestParsePositions(t *testing.T) {
	// Line numbers feed analyzer findings (file:line diagnostics), so
	// pin them exactly: comments, blank lines, multi-line statements
	// and two sets sharing one source line must all survive parsing.
	p := MustParse(`
# header comment

/O=Grid/CN=A: &(action = start)(executable = a)

/O=Grid/CN=B:
  &(action = start)(count <= 4)

  &(action = cancel)(jobowner = self) &(action = signal)(jobowner = self)
`, "t")
	if len(p.Statements) != 2 {
		t.Fatalf("statements = %d", len(p.Statements))
	}
	a, b := p.Statements[0], p.Statements[1]
	if a.Line != 4 {
		t.Errorf("statement A header line = %d, want 4", a.Line)
	}
	if got := a.Sets[0].Line; got != 4 {
		t.Errorf("A set 0 line = %d, want 4 (same line as header)", got)
	}
	if b.Line != 6 {
		t.Errorf("statement B header line = %d, want 6", b.Line)
	}
	want := []int{7, 9, 9}
	if len(b.Sets) != len(want) {
		t.Fatalf("B sets = %d, want %d", len(b.Sets), len(want))
	}
	for i, w := range want {
		if got := b.Sets[i].Line; got != w {
			t.Errorf("B set %d line = %d, want %d", i, got, w)
		}
	}
}
