package policy

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Store is a concurrency-safe holder of the CURRENT policy of one
// administrative source, for deployments where the policy can change
// while the resource is serving requests (the paper's policies live in
// files the resource owner or VO administrator edits).
//
// The read path is lock-free: the policy and its compiled form
// (Compiled) are swapped together in one atomic.Pointer snapshot, so an
// uncached decision costs one atomic load and a reader can never observe
// a compiled form that belongs to a different policy than Current().
//
// Its point is change notification: every mutation fires the OnChange
// hooks after the swap, which is how policy updates reach the decision
// cache (core.Registry.InvalidateCaches bumps the policy epoch, so the
// very next request re-evaluates against the new policy — a stale
// permit can never be served). The compiled form is rebuilt inside
// Update before the hooks fire, so by the time the epoch bumps the new
// compiled snapshot is already what evaluators see.
type Store struct {
	snap atomic.Pointer[snapshot]
	// mu serializes Update calls (so snapshots cannot swap out of
	// order) and guards the hook list. Readers never take it.
	mu    sync.Mutex
	hooks []func()
}

// snapshot pairs a policy with its compiled form; both are immutable.
type snapshot struct {
	pol      *Policy
	compiled *Compiled
}

func newSnapshot(pol *Policy) *snapshot {
	s := &snapshot{pol: pol}
	if pol != nil {
		s.compiled = Compile(pol)
	}
	return s
}

// NewStore creates a store holding pol, compiling it immediately.
func NewStore(pol *Policy) *Store {
	s := &Store{}
	s.snap.Store(newSnapshot(pol))
	return s
}

// Current returns the policy as of now. Policies are treated as
// immutable once stored: mutate by calling Update with a new one.
func (s *Store) Current() *Policy {
	return s.snap.Load().pol
}

// Compiled returns the compiled form of the current policy. It is
// rebuilt on every Update, so the result always corresponds to the
// policy a concurrent Current() call from the same snapshot returns.
func (s *Store) Compiled() *Compiled {
	return s.snap.Load().compiled
}

// Source returns the current policy's source label.
func (s *Store) Source() string {
	return s.Current().Source
}

// Update atomically replaces the policy (and its compiled form) and
// notifies subscribers.
func (s *Store) Update(pol *Policy) {
	if pol == nil {
		return
	}
	// Compile outside the lock: compilation is pure and per-snapshot,
	// and at large policies it is the expensive part of an update.
	snap := newSnapshot(pol)
	s.mu.Lock()
	s.snap.Store(snap)
	hooks := append([]func(){}, s.hooks...)
	s.mu.Unlock()
	// Hooks run outside the lock so they may call back into the store.
	for _, fn := range hooks {
		fn()
	}
}

// UpdateText parses text in the policy language (keeping the current
// source label) and installs it.
func (s *Store) UpdateText(text string) error {
	pol, err := ParseString(text, s.Source())
	if err != nil {
		return fmt.Errorf("policy store: %w", err)
	}
	s.Update(pol)
	return nil
}

// OnChange subscribes fn to policy replacements. fn runs synchronously
// inside Update, after the new policy is visible, so a caller that
// invalidates a cache in fn is guaranteed the next Current() call
// already returns the new policy.
func (s *Store) OnChange(fn func()) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = append(s.hooks, fn)
}
