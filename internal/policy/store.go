package policy

import (
	"fmt"
	"sync"
)

// Store is a concurrency-safe holder of the CURRENT policy of one
// administrative source, for deployments where the policy can change
// while the resource is serving requests (the paper's policies live in
// files the resource owner or VO administrator edits).
//
// Its point is change notification: every mutation fires the OnChange
// hooks after the swap, which is how policy updates reach the decision
// cache (core.Registry.InvalidateCaches bumps the policy epoch, so the
// very next request re-evaluates against the new policy — a stale
// permit can never be served).
type Store struct {
	mu    sync.RWMutex
	pol   *Policy
	hooks []func()
}

// NewStore creates a store holding pol.
func NewStore(pol *Policy) *Store {
	return &Store{pol: pol}
}

// Current returns the policy as of now. Policies are treated as
// immutable once stored: mutate by calling Update with a new one.
func (s *Store) Current() *Policy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pol
}

// Source returns the current policy's source label.
func (s *Store) Source() string {
	return s.Current().Source
}

// Update atomically replaces the policy and notifies subscribers.
func (s *Store) Update(pol *Policy) {
	if pol == nil {
		return
	}
	s.mu.Lock()
	s.pol = pol
	hooks := append([]func(){}, s.hooks...)
	s.mu.Unlock()
	// Hooks run outside the lock so they may call back into the store.
	for _, fn := range hooks {
		fn()
	}
}

// UpdateText parses text in the policy language (keeping the current
// source label) and installs it.
func (s *Store) UpdateText(text string) error {
	pol, err := ParseString(text, s.Source())
	if err != nil {
		return fmt.Errorf("policy store: %w", err)
	}
	s.Update(pol)
	return nil
}

// OnChange subscribes fn to policy replacements. fn runs synchronously
// inside Update, after the new policy is visible, so a caller that
// invalidates a cache in fn is guaranteed the next Current() call
// already returns the new policy.
func (s *Store) OnChange(fn func()) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = append(s.hooks, fn)
}
