package policy

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Store is a concurrency-safe holder of the CURRENT policy of one
// administrative source, for deployments where the policy can change
// while the resource is serving requests (the paper's policies live in
// files the resource owner or VO administrator edits).
//
// The read path is lock-free: the policy, its compiled form (Compiled)
// and a monotonically increasing epoch are swapped together in one
// atomic.Pointer snapshot, so an uncached decision costs one atomic
// load and a reader can never observe a compiled form that belongs to a
// different policy than Current(). The epoch orders replacements: it is
// assigned under the store's mutex at swap time, so a snapshot with a
// higher epoch is always the one installed later. Cluster replication
// (internal/cluster) leans on this to tell a re-delivered stale policy
// from a genuinely newer one.
//
// Its point is change notification: every mutation fires the OnChange /
// OnEpochChange hooks after the swap, which is how policy updates reach
// the decision cache (core.Registry.InvalidateCaches bumps the cache
// epoch, so the very next request re-evaluates against the new policy —
// a stale permit can never be served). The compiled form is rebuilt
// inside Replace before the hooks fire, so by the time the cache epoch
// bumps the new compiled snapshot is already what evaluators see.
//
// Hook delivery is ORDERED and COALESCING: hooks observe store epochs
// in strictly increasing order even when concurrent Replace calls race
// (compilation happens outside the lock, so the slower compile can
// finish last). When replacements outpace delivery, intermediate epochs
// are skipped and only the newest is delivered — a hook that fires for
// epoch N is guaranteed no snapshot older than N is current.
type Store struct {
	snap atomic.Pointer[snapshot]
	// mu serializes swaps (so snapshots cannot install out of epoch
	// order) and guards the hook list. Readers never take it.
	mu    sync.Mutex
	seq   uint64 // last assigned epoch
	hooks []func(epoch uint64)

	// notifyMu guards the coalescing delivery state below. It is never
	// held while hooks run, so hooks may call back into the store
	// (including Replace) without deadlocking.
	notifyMu  sync.Mutex
	notifying bool      // a goroutine is currently draining deliveries
	pendingN  *snapshot // newest snapshot awaiting delivery
	notified  uint64    // highest epoch hooks have been fired for
}

// snapshot pairs a policy with its compiled form and the epoch assigned
// at swap time; all three are immutable.
type snapshot struct {
	pol      *Policy
	compiled *Compiled
	epoch    uint64
}

func newSnapshot(pol *Policy) *snapshot {
	s := &snapshot{pol: pol}
	if pol != nil {
		s.compiled = Compile(pol)
	}
	return s
}

// NewStore creates a store holding pol, compiling it immediately. The
// initial snapshot has epoch 1.
func NewStore(pol *Policy) *Store {
	s := &Store{seq: 1}
	snap := newSnapshot(pol)
	snap.epoch = 1
	s.snap.Store(snap)
	s.notified = 1 // the initial install predates any subscriber
	return s
}

// Current returns the policy as of now. Policies are treated as
// immutable once stored: mutate by calling Replace with a new one.
func (s *Store) Current() *Policy {
	return s.snap.Load().pol
}

// Compiled returns the compiled form of the current policy. It is
// rebuilt on every Replace, so the result always corresponds to the
// policy a concurrent Current() call from the same snapshot returns.
func (s *Store) Compiled() *Compiled {
	return s.snap.Load().compiled
}

// Epoch returns the epoch of the current snapshot. Epochs increase by
// one per installed replacement, starting at 1 for the snapshot the
// store was created with.
func (s *Store) Epoch() uint64 {
	return s.snap.Load().epoch
}

// Snapshot returns the current policy, its compiled form and its epoch
// as one consistent view (a single atomic load). Code that acts on a
// snapshot AND records which version it acted on — replication,
// staleness accounting — must use this rather than separate Current /
// Compiled / Epoch calls, which may straddle a swap; the authlint
// epochuse check enforces that for cluster-layer code.
func (s *Store) Snapshot() (*Policy, *Compiled, uint64) {
	sn := s.snap.Load()
	return sn.pol, sn.compiled, sn.epoch
}

// Source returns the current policy's source label.
func (s *Store) Source() string {
	return s.Current().Source
}

// Update atomically replaces the policy (and its compiled form) and
// notifies subscribers. It is Replace without the epoch result, kept
// for callers that don't track versions.
func (s *Store) Update(pol *Policy) {
	s.Replace(pol)
}

// Replace atomically installs pol (compiling it first, outside the
// lock) and returns the epoch assigned to it; subscribers are notified
// in epoch order. A nil pol is a no-op and returns 0.
func (s *Store) Replace(pol *Policy) uint64 {
	if pol == nil {
		return 0
	}
	// Compile outside the lock: compilation is pure and per-snapshot,
	// and at large policies it is the expensive part of a replacement.
	snap := newSnapshot(pol)
	s.mu.Lock()
	s.seq++
	snap.epoch = s.seq
	s.snap.Store(snap)
	s.mu.Unlock()
	s.notify(snap)
	return snap.epoch
}

// notify delivers the change to hooks, preserving epoch order across
// racing Replace calls. Exactly one goroutine drains deliveries at a
// time; the others leave their (newer) snapshot behind and return, so
// an epoch is never announced after a higher one and bursts coalesce to
// the newest state.
func (s *Store) notify(snap *snapshot) {
	s.notifyMu.Lock()
	if s.pendingN == nil || snap.epoch > s.pendingN.epoch {
		s.pendingN = snap
	}
	if s.notifying {
		s.notifyMu.Unlock()
		return
	}
	s.notifying = true
	for {
		next := s.pendingN
		s.pendingN = nil
		if next == nil || next.epoch <= s.notified {
			s.notifying = false
			s.notifyMu.Unlock()
			return
		}
		s.notified = next.epoch
		s.notifyMu.Unlock()
		s.mu.Lock()
		hooks := append([]func(uint64){}, s.hooks...)
		s.mu.Unlock()
		// Hooks run outside both locks so they may call back into the
		// store; a reentrant Replace parks its snapshot in pendingN and
		// this loop delivers it next.
		for _, fn := range hooks {
			fn(next.epoch)
		}
		s.notifyMu.Lock()
	}
}

// UpdateText parses text in the policy language (keeping the current
// source label) and installs it.
func (s *Store) UpdateText(text string) error {
	pol, err := ParseString(text, s.Source())
	if err != nil {
		return fmt.Errorf("policy store: %w", err)
	}
	s.Update(pol)
	return nil
}

// OnChange subscribes fn to policy replacements. fn runs after the new
// policy is visible, so a caller that invalidates a cache in fn is
// guaranteed the next Current() call already returns a policy at least
// as new as the one that triggered the notification. Under concurrent
// replacements delivery may coalesce: fn fires once for the newest
// state rather than once per Replace.
func (s *Store) OnChange(fn func()) {
	if fn == nil {
		return
	}
	s.OnEpochChange(func(uint64) { fn() })
}

// OnEpochChange is OnChange for subscribers that track versions: fn
// receives the epoch of the snapshot being announced, and successive
// calls see strictly increasing epochs (intermediate epochs may be
// skipped when replacements outpace delivery).
func (s *Store) OnEpochChange(fn func(epoch uint64)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = append(s.hooks, fn)
}
