package policy

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

const boDN = "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu"

func TestStoreUpdateAndHooks(t *testing.T) {
	s := NewStore(MustParse(boDN+`: &(action = start)`, "VO:NFC"))
	if s.Source() != "VO:NFC" {
		t.Fatalf("Source = %q", s.Source())
	}
	fired := 0
	var current *Policy
	s.OnChange(func() {
		fired++
		// The hook must observe the NEW policy already installed.
		current = s.Current()
	})
	if err := s.UpdateText(boDN + `: &(action = cancel)`); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
	if current == nil || !strings.Contains(current.Unparse(), "cancel") {
		t.Errorf("hook saw stale policy: %v", current)
	}
	if s.Source() != "VO:NFC" {
		t.Errorf("UpdateText lost the source label: %q", s.Source())
	}
	// A parse failure must neither swap the policy nor fire hooks.
	if err := s.UpdateText(`not a policy %%%`); err == nil {
		t.Fatal("UpdateText accepted garbage")
	}
	if fired != 1 {
		t.Errorf("failed update fired hooks")
	}
	s.Update(nil) // no-op
	if fired != 1 {
		t.Errorf("Update(nil) fired hooks")
	}
}

// TestStoreHookEpochOrdering pins the Replace delivery contract under
// racing updates: compilation happens outside the lock, so a slow
// compile can finish after a faster later one — hooks must still
// observe epochs in strictly increasing order, and the newest epoch
// must always be the last one announced (coalescing may skip
// intermediate epochs but never reorders or loses the final state).
func TestStoreHookEpochOrdering(t *testing.T) {
	// Two policies with very different compile costs, to make racing
	// Replace calls overtake each other between compile and swap.
	small := MustParse(boDN+`: &(action = start)`, "VO")
	var big strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&big, "/O=Grid/CN=User %d: &(action = start)(executable = sim%d)\n", i, i)
	}
	bigPol := MustParse(big.String(), "VO")

	s := NewStore(small)
	var (
		mu       sync.Mutex
		observed []uint64
	)
	s.OnEpochChange(func(epoch uint64) {
		mu.Lock()
		observed = append(observed, epoch)
		mu.Unlock()
	})

	const goroutines = 8
	const replacesPer = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < replacesPer; i++ {
				pol := small
				if (g+i)%2 == 0 {
					pol = bigPol
				}
				if e := s.Replace(pol); e == 0 {
					t.Error("Replace returned epoch 0 for a non-nil policy")
					return
				}
				// Readers must always see a coherent (policy, compiled,
				// epoch) triple.
				pol2, compiled, epoch := s.Snapshot()
				if pol2 == nil || compiled == nil || epoch == 0 {
					t.Errorf("Snapshot returned incoherent view: %v %v %d", pol2, compiled, epoch)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(observed) == 0 {
		t.Fatal("no hook deliveries observed")
	}
	for i := 1; i < len(observed); i++ {
		if observed[i] <= observed[i-1] {
			t.Fatalf("hook epochs out of order at %d: %d after %d (full: %v)",
				i, observed[i], observed[i-1], observed)
		}
	}
	final := s.Epoch()
	if want := uint64(1 + goroutines*replacesPer); final != want {
		t.Errorf("final epoch = %d, want %d", final, want)
	}
	if last := observed[len(observed)-1]; last != final {
		t.Errorf("last announced epoch = %d, but store is at %d: the newest state was never delivered", last, final)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore(MustParse(boDN+`: &(action = start)`, "VO"))
	s.OnChange(func() { _ = s.Current() }) // reentrant read from the hook
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if i%10 == 0 {
					_ = s.UpdateText(boDN + `: &(action = start)`)
				}
				if s.Current() == nil {
					t.Error("Current returned nil")
					return
				}
			}
		}()
	}
	wg.Wait()
}
