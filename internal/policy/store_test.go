package policy

import (
	"strings"
	"sync"
	"testing"
)

const boDN = "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu"

func TestStoreUpdateAndHooks(t *testing.T) {
	s := NewStore(MustParse(boDN+`: &(action = start)`, "VO:NFC"))
	if s.Source() != "VO:NFC" {
		t.Fatalf("Source = %q", s.Source())
	}
	fired := 0
	var current *Policy
	s.OnChange(func() {
		fired++
		// The hook must observe the NEW policy already installed.
		current = s.Current()
	})
	if err := s.UpdateText(boDN + `: &(action = cancel)`); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
	if current == nil || !strings.Contains(current.Unparse(), "cancel") {
		t.Errorf("hook saw stale policy: %v", current)
	}
	if s.Source() != "VO:NFC" {
		t.Errorf("UpdateText lost the source label: %q", s.Source())
	}
	// A parse failure must neither swap the policy nor fire hooks.
	if err := s.UpdateText(`not a policy %%%`); err == nil {
		t.Fatal("UpdateText accepted garbage")
	}
	if fired != 1 {
		t.Errorf("failed update fired hooks")
	}
	s.Update(nil) // no-op
	if fired != 1 {
		t.Errorf("Update(nil) fired hooks")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore(MustParse(boDN+`: &(action = start)`, "VO"))
	s.OnChange(func() { _ = s.Current() }) // reentrant read from the hook
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if i%10 == 0 {
					_ = s.UpdateText(boDN + `: &(action = start)`)
				}
				if s.Current() == nil {
					t.Error("Current returned nil")
					return
				}
			}
		}()
	}
	wg.Wait()
}
