package policy

// §6.3 of the paper reports that the RSL-based syntax "is not a standard
// policy language ... We are therefore investigating existing policy
// languages as a replacement", naming XACML as the leading candidate.
// This file implements that future-work direction: a lossless bridge
// between the native language and an XACML-flavoured XML document
// (simplified — real XACML 1.0 carries much more machinery than the
// paper's policies use: one <Policy> per statement, one <Rule> per
// assertion set, subjects matched by DN prefix, and RSL relations carried
// as attribute Match elements).
//
// ExportXACML and ImportXACML round-trip: decisions over the imported
// policy equal decisions over the original (tested by property in
// xacml_test.go).

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"gridauth/internal/gsi"
	"gridauth/internal/rsl"
)

// xacmlPolicySet is the document root.
type xacmlPolicySet struct {
	XMLName  xml.Name      `xml:"PolicySet"`
	ID       string        `xml:"PolicySetId,attr"`
	Combine  string        `xml:"PolicyCombiningAlgId,attr"`
	Policies []xacmlPolicy `xml:"Policy"`
}

type xacmlPolicy struct {
	ID      string      `xml:"PolicyId,attr"`
	Subject string      `xml:"Target>Subjects>Subject>SubjectMatch>AttributeValue"`
	Rules   []xacmlRule `xml:"Rule"`
}

type xacmlRule struct {
	ID      string       `xml:"RuleId,attr"`
	Effect  string       `xml:"Effect,attr"`
	Matches []xacmlMatch `xml:"Condition>Apply"`
}

type xacmlMatch struct {
	// FunctionId encodes the RSL relation operator.
	FunctionID string   `xml:"FunctionId,attr"`
	Attribute  string   `xml:"AttributeDesignator"`
	Values     []string `xml:"AttributeValue"`
}

const (
	xacmlNSPrefix = "urn:gridauth:rsl-op:"
	xacmlCombine  = "urn:gridauth:combining:paper-grant-requirement"
)

func opToFunction(op rsl.Op) string {
	return xacmlNSPrefix + map[rsl.Op]string{
		rsl.OpEq:  "eq",
		rsl.OpNeq: "neq",
		rsl.OpLt:  "lt",
		rsl.OpLe:  "le",
		rsl.OpGt:  "gt",
		rsl.OpGe:  "ge",
	}[op]
}

func functionToOp(fn string) (rsl.Op, error) {
	suffix := strings.TrimPrefix(fn, xacmlNSPrefix)
	switch suffix {
	case "eq":
		return rsl.OpEq, nil
	case "neq":
		return rsl.OpNeq, nil
	case "lt":
		return rsl.OpLt, nil
	case "le":
		return rsl.OpLe, nil
	case "gt":
		return rsl.OpGt, nil
	case "ge":
		return rsl.OpGe, nil
	default:
		return 0, fmt.Errorf("policy: unknown XACML function %q", fn)
	}
}

// ExportXACML renders the policy as an XACML-flavoured document.
func ExportXACML(p *Policy, w io.Writer) error {
	doc := xacmlPolicySet{
		ID:      p.Source,
		Combine: xacmlCombine,
	}
	for si, st := range p.Statements {
		xp := xacmlPolicy{
			ID:      fmt.Sprintf("statement-%d", si),
			Subject: string(st.Subject),
		}
		for ri, set := range st.Sets {
			effect := "Permit"
			if set.IsRequirement() {
				effect = "Obligation" // requirement sets constrain, not grant
			}
			rule := xacmlRule{
				ID:     fmt.Sprintf("set-%d", ri),
				Effect: effect,
			}
			for _, c := range set.Clauses {
				m := xacmlMatch{
					FunctionID: opToFunction(c.Op),
					Attribute:  c.Attribute,
				}
				for _, v := range c.Values {
					if v.IsVariable() {
						return fmt.Errorf("policy: cannot export variable reference $(%s)", v.Variable)
					}
					m.Values = append(m.Values, v.Literal)
				}
				rule.Matches = append(rule.Matches, m)
			}
			xp.Rules = append(xp.Rules, rule)
		}
		doc.Policies = append(doc.Policies, xp)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		return fmt.Errorf("policy: encode XACML: %w", err)
	}
	return enc.Close()
}

// ImportXACML parses a document produced by ExportXACML back into a
// native policy.
func ImportXACML(r io.Reader) (*Policy, error) {
	var doc xacmlPolicySet
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("policy: decode XACML: %w", err)
	}
	if doc.Combine != xacmlCombine {
		return nil, fmt.Errorf("policy: unsupported combining algorithm %q", doc.Combine)
	}
	p := &Policy{Source: doc.ID}
	for _, xp := range doc.Policies {
		subject := gsi.DN(xp.Subject)
		if !subject.Valid() {
			return nil, fmt.Errorf("policy: invalid subject %q", xp.Subject)
		}
		st := &Statement{Subject: subject}
		for _, rule := range xp.Rules {
			if rule.Effect != "Permit" && rule.Effect != "Obligation" {
				return nil, fmt.Errorf("policy: unsupported rule effect %q", rule.Effect)
			}
			set := &AssertionSet{}
			for _, m := range rule.Matches {
				op, err := functionToOp(m.FunctionID)
				if err != nil {
					return nil, err
				}
				if len(m.Values) == 0 {
					return nil, fmt.Errorf("policy: match on %q has no values", m.Attribute)
				}
				rel := &rsl.Relation{Attribute: strings.ToLower(m.Attribute), Op: op}
				for _, v := range m.Values {
					rel.Values = append(rel.Values, rsl.Lit(v))
				}
				set.Clauses = append(set.Clauses, rel)
			}
			if len(set.Clauses) == 0 {
				return nil, fmt.Errorf("policy: rule %s has no matches", rule.ID)
			}
			// Sanity: the declared effect must agree with the set's
			// computed classification, or decisions would silently
			// change.
			isReq := set.IsRequirement()
			if isReq != (rule.Effect == "Obligation") {
				return nil, fmt.Errorf("policy: rule %s effect %q conflicts with clause classification", rule.ID, rule.Effect)
			}
			st.Sets = append(st.Sets, set)
		}
		if len(st.Sets) == 0 {
			return nil, fmt.Errorf("policy: statement for %q has no rules", xp.Subject)
		}
		p.Statements = append(p.Statements, st)
	}
	return p, nil
}
