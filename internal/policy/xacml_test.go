package policy

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"gridauth/internal/gsi"
	"gridauth/internal/rsl"
)

func exportImport(t *testing.T, p *Policy) *Policy {
	t.Helper()
	var buf bytes.Buffer
	if err := ExportXACML(p, &buf); err != nil {
		t.Fatal(err)
	}
	p2, err := ImportXACML(&buf)
	if err != nil {
		t.Fatalf("import: %v\n%s", err, buf.String())
	}
	return p2
}

func TestXACMLRoundTripShape(t *testing.T) {
	p := fig3Policy(t)
	p2 := exportImport(t, p)
	if p2.Source != p.Source {
		t.Errorf("source = %q", p2.Source)
	}
	if len(p2.Statements) != len(p.Statements) {
		t.Fatalf("statements = %d, want %d", len(p2.Statements), len(p.Statements))
	}
	for i := range p.Statements {
		if p.Statements[i].Subject != p2.Statements[i].Subject {
			t.Errorf("statement %d subject changed", i)
		}
		if len(p.Statements[i].Sets) != len(p2.Statements[i].Sets) {
			t.Errorf("statement %d sets changed", i)
		}
	}
}

func TestXACMLDocumentLooksLikeXACML(t *testing.T) {
	p := fig3Policy(t)
	var buf bytes.Buffer
	if err := ExportXACML(p, &buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{"<PolicySet", "PolicyCombiningAlgId", "<Rule", `Effect="Permit"`, `Effect="Obligation"`, "AttributeDesignator"} {
		if !strings.Contains(doc, want) {
			t.Errorf("document lacks %q:\n%s", want, doc)
		}
	}
}

// Property: decisions over the imported policy equal decisions over the
// original for a grid of requests.
func TestQuickXACMLDecisionEquivalence(t *testing.T) {
	p := fig3Policy(t)
	p2 := exportImport(t, p)
	subjects := []string{string(bo), string(kate), string(sam), string(ext)}
	actions := []string{ActionStart, ActionCancel, ActionInformation}
	exes := []string{"test1", "test2", "TRANSP", "rm"}
	tags := []string{"ADS", "NFC", ""}
	f := func(s, a, e, tg, count uint8) bool {
		sp := rsl.NewSpec().
			Set("executable", exes[int(e)%len(exes)]).
			Set("directory", "/sandbox/test").
			Set("count", itoa(int(count)%6))
		if tag := tags[int(tg)%len(tags)]; tag != "" {
			sp.Set("jobtag", tag)
		}
		req := &Request{
			Subject:  gsi.DN(subjects[int(s)%len(subjects)]),
			Action:   actions[int(a)%len(actions)],
			Spec:     sp,
			JobOwner: bo,
		}
		d1 := p.Evaluate(req)
		d2 := p2.Evaluate(req)
		return d1.Allowed == d2.Allowed && d1.Applicable == d2.Applicable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestXACMLImportErrors(t *testing.T) {
	bad := []string{
		`not xml`,
		`<PolicySet PolicySetId="x" PolicyCombiningAlgId="urn:other"/>`,
		`<PolicySet PolicySetId="x" PolicyCombiningAlgId="urn:gridauth:combining:paper-grant-requirement">
		  <Policy PolicyId="p"><Target><Subjects><Subject><SubjectMatch><AttributeValue>not-a-dn</AttributeValue></SubjectMatch></Subject></Subjects></Target>
		    <Rule RuleId="r" Effect="Permit"><Condition><Apply FunctionId="urn:gridauth:rsl-op:eq"><AttributeDesignator>executable</AttributeDesignator><AttributeValue>a</AttributeValue></Apply></Condition></Rule>
		  </Policy></PolicySet>`,
		`<PolicySet PolicySetId="x" PolicyCombiningAlgId="urn:gridauth:combining:paper-grant-requirement">
		  <Policy PolicyId="p"><Target><Subjects><Subject><SubjectMatch><AttributeValue>/O=Grid</AttributeValue></SubjectMatch></Subject></Subjects></Target>
		    <Rule RuleId="r" Effect="Deny"><Condition><Apply FunctionId="urn:gridauth:rsl-op:eq"><AttributeDesignator>executable</AttributeDesignator><AttributeValue>a</AttributeValue></Apply></Condition></Rule>
		  </Policy></PolicySet>`,
		`<PolicySet PolicySetId="x" PolicyCombiningAlgId="urn:gridauth:combining:paper-grant-requirement">
		  <Policy PolicyId="p"><Target><Subjects><Subject><SubjectMatch><AttributeValue>/O=Grid</AttributeValue></SubjectMatch></Subject></Subjects></Target>
		    <Rule RuleId="r" Effect="Permit"><Condition><Apply FunctionId="urn:wrong:fn"><AttributeDesignator>executable</AttributeDesignator><AttributeValue>a</AttributeValue></Apply></Condition></Rule>
		  </Policy></PolicySet>`,
		// Effect disagreeing with the clause classification (Obligation
		// on a granting clause).
		`<PolicySet PolicySetId="x" PolicyCombiningAlgId="urn:gridauth:combining:paper-grant-requirement">
		  <Policy PolicyId="p"><Target><Subjects><Subject><SubjectMatch><AttributeValue>/O=Grid</AttributeValue></SubjectMatch></Subject></Subjects></Target>
		    <Rule RuleId="r" Effect="Obligation"><Condition><Apply FunctionId="urn:gridauth:rsl-op:eq"><AttributeDesignator>executable</AttributeDesignator><AttributeValue>a</AttributeValue></Apply></Condition></Rule>
		  </Policy></PolicySet>`,
	}
	for i, doc := range bad {
		if _, err := ImportXACML(strings.NewReader(doc)); err == nil {
			t.Errorf("document %d accepted", i)
		}
	}
}

func TestXACMLExportRejectsVariables(t *testing.T) {
	p := &Policy{Source: "t", Statements: []*Statement{{
		Subject: "/O=Grid",
		Sets: []*AssertionSet{{Clauses: []*rsl.Relation{{
			Attribute: "stdout", Op: rsl.OpEq, Values: []rsl.Value{rsl.Var("HOME")},
		}}}},
	}}}
	var buf bytes.Buffer
	if err := ExportXACML(p, &buf); err == nil {
		t.Errorf("variable reference exported")
	}
}
