package resilience

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

// Breaker states: Closed passes traffic; Open sheds it; HalfOpen lets a
// bounded probe budget through to test recovery.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String returns the state name.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig tunes a Breaker. Zero values select the documented
// defaults.
type BreakerConfig struct {
	// Threshold is the number of CONSECUTIVE failures that trips a
	// closed breaker open (0 selects 5).
	Threshold int
	// Cooldown is how long an open breaker sheds before moving to
	// half-open (0 selects 5s).
	Cooldown time.Duration
	// Probes is how many concurrent trial calls a half-open breaker
	// admits (0 selects 1). One probe failure re-opens; one success
	// closes.
	Probes int
	// Clock is the time source (nil selects time.Now).
	Clock func() time.Time
	// OnStateChange observes every transition (auditing hook). Called
	// outside the breaker's lock, in transition order.
	OnStateChange func(from, to BreakerState, reason string)
}

// Breaker is a circuit breaker: it watches a dependency's consecutive
// failures, sheds calls while the dependency is considered down
// (failing fast instead of stacking timeouts), and probes cautiously
// for recovery. The classic closed → open → half-open automaton.
type Breaker struct {
	cfg BreakerConfig

	// calm is true exactly while state == Closed with a zero failure
	// streak — the steady state of a healthy backend. Allow and Success
	// read it lock-free so the happy path costs two atomic loads, not
	// two mutex round trips; a call that races a concurrent trip and
	// slips through as a straggler is handled by Failure's Open case.
	calm atomic.Bool

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	inflight int       // admitted probes while half-open
	shed     uint64    // calls rejected while open
}

// NewBreaker builds a breaker from cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	b := &Breaker{cfg: cfg}
	b.calm.Store(true)
	return b
}

// Allow reports whether a call may proceed. While open it returns false
// until the cooldown elapses, then flips to half-open and admits up to
// Probes concurrent trials; every admitted call MUST be resolved with
// Success or Failure.
func (b *Breaker) Allow() bool {
	if b.calm.Load() {
		return true
	}
	b.mu.Lock()
	var notify func()
	defer func() {
		b.mu.Unlock()
		if notify != nil {
			notify()
		}
	}()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.Cooldown {
			b.shed++
			return false
		}
		notify = b.transitionLocked(HalfOpen, "cooldown elapsed, probing")
		b.inflight = 1
		return true
	case HalfOpen:
		if b.inflight >= b.cfg.Probes {
			b.shed++
			return false
		}
		b.inflight++
		return true
	default:
		return true
	}
}

// Success records a successful call: it resets the failure streak and
// closes a half-open breaker.
func (b *Breaker) Success() {
	if b.calm.Load() {
		return // already closed with no streak; nothing to reset
	}
	b.mu.Lock()
	var notify func()
	b.failures = 0
	if b.state == HalfOpen {
		b.inflight = 0
		notify = b.transitionLocked(Closed, "probe succeeded")
	}
	if b.state == Closed {
		b.calm.Store(true)
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// Failure records a failed call with its reason: it trips a closed
// breaker at the threshold and re-opens a half-open one immediately.
func (b *Breaker) Failure(reason string) {
	b.mu.Lock()
	b.calm.Store(false)
	var notify func()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			notify = b.transitionLocked(Open,
				fmt.Sprintf("%d consecutive failures (last: %s)", b.failures, reason))
			b.openedAt = b.cfg.Clock()
		}
	case HalfOpen:
		b.inflight = 0
		notify = b.transitionLocked(Open, "probe failed: "+reason)
		b.openedAt = b.cfg.Clock()
	case Open:
		// A straggler from before the trip; nothing changes.
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// transitionLocked moves the automaton and returns the deferred
// notification (run outside the lock so an observer can call back in).
func (b *Breaker) transitionLocked(to BreakerState, reason string) func() {
	from := b.state
	b.state = to
	if b.state == Closed {
		b.failures = 0
		b.calm.Store(true)
	}
	if cb := b.cfg.OnStateChange; cb != nil && from != to {
		return func() { cb(from, to, reason) }
	}
	return nil
}

// State returns the current state (observability; the answer may be
// stale the moment it returns).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Shed returns how many calls the breaker has rejected.
func (b *Breaker) Shed() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shed
}
