package resilience

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// lazyDeadline is a context.Context for the common attempt shape — an
// uncancellable parent plus a per-attempt deadline — that defers the
// expensive part of context.WithTimeout: no timer is armed and no Done
// channel exists until a caller actually blocks on Done(). A
// context-aware PDP that answers quickly (the in-process policy
// engines) pays one small allocation and two clock reads instead of a
// timer arm/stop pair per attempt, which is what keeps the wrapped
// happy path within a few percent of unwrapped
// (BenchmarkP9_ResilienceOverhead).
//
// It is only valid when parent.Done() == nil (context.Background and
// friends): with no parent cancellation to propagate, the deadline
// timer is the sole Done trigger, so it can be created on demand.
type lazyDeadline struct {
	parent   context.Context
	deadline time.Time

	// state: 0 live, 1 deadline exceeded, 2 canceled. Err reads it
	// lock-free; the mutex below only guards the Done machinery.
	state atomic.Int32
	armed atomic.Bool // Done has been called

	mu    sync.Mutex
	done  chan struct{}
	timer *time.Timer
}

const (
	ldLive = iota
	ldExpired
	ldCanceled
)

// newLazyDeadline builds the context. The caller must call cancel when
// the attempt resolves (the defer-cancel contract of WithTimeout).
func newLazyDeadline(parent context.Context, timeout time.Duration) *lazyDeadline {
	return &lazyDeadline{parent: parent, deadline: time.Now().Add(timeout)}
}

// Deadline implements context.Context.
func (c *lazyDeadline) Deadline() (time.Time, bool) {
	if pd, ok := c.parent.Deadline(); ok && pd.Before(c.deadline) {
		return pd, true
	}
	return c.deadline, true
}

// Value implements context.Context by deferring to the parent.
func (c *lazyDeadline) Value(key any) any { return c.parent.Value(key) }

// Err implements context.Context: DeadlineExceeded once the deadline
// passes, Canceled once the attempt is over.
func (c *lazyDeadline) Err() error {
	switch c.state.Load() {
	case ldExpired:
		return context.DeadlineExceeded
	case ldCanceled:
		return context.Canceled
	}
	if !time.Now().Before(c.deadline) {
		c.state.CompareAndSwap(ldLive, ldExpired)
		return context.DeadlineExceeded
	}
	return nil
}

// Done implements context.Context, arming the deadline timer on first
// use.
func (c *lazyDeadline) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done == nil {
		c.done = make(chan struct{})
		if c.Err() != nil {
			close(c.done)
		} else {
			c.timer = time.AfterFunc(time.Until(c.deadline), c.expire)
		}
		c.armed.Store(true)
	}
	return c.done
}

func (c *lazyDeadline) expire() {
	c.state.CompareAndSwap(ldLive, ldExpired)
	c.mu.Lock()
	select {
	case <-c.done:
	default:
		close(c.done)
	}
	c.mu.Unlock()
}

// cancel releases the attempt's resources, like a WithTimeout
// CancelFunc: it marks the context canceled and, if Done was armed,
// stops the timer and closes the channel. A Done call racing cancel
// from another goroutine may leave the timer to fire at the deadline;
// the firing is harmless (the state is already canceled) and the
// attempt it would have bounded is long resolved.
func (c *lazyDeadline) cancel() {
	c.state.CompareAndSwap(ldLive, ldCanceled)
	if !c.armed.Load() {
		return
	}
	c.mu.Lock()
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if c.done != nil {
		select {
		case <-c.done:
		default:
			close(c.done)
		}
	}
	c.mu.Unlock()
}
