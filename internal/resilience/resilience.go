package resilience

import (
	"context"
	"fmt"
	"time"

	"gridauth/internal/audit"
	"gridauth/internal/core"
	"gridauth/internal/obs"
)

// Options selects which protections Wrap applies. The zero value
// applies none (Wrap returns the PDP unchanged).
type Options struct {
	// Timeout bounds one callout attempt. A context-aware PDP gets a
	// deadline context; a plain PDP runs under a watchdog goroutine and
	// an overrun is converted into an Error decision (the abandoned
	// evaluation's late result is discarded). 0 disables.
	Timeout time.Duration
	// Retry re-runs attempts whose decision is Error (the transient
	// "authorization system failure" class — Permit, Deny and
	// NotApplicable never retry). Retry.Attempts <= 1 disables.
	Retry Policy
	// Breaker, when non-nil, sheds calls after consecutive Error
	// decisions instead of stacking timeouts onto a dead backend.
	Breaker *BreakerConfig
	// Audit, when non-nil, records breaker state transitions as
	// audit records (PDP = wrapped PDP's name, Action =
	// "circuit-breaker"). Transitions are system events, not requests,
	// so these records carry no RequestID. On a pipeline log the append
	// is asynchronous and subject to the log's queue-full degraded mode
	// (docs/AUDIT.md): transitions are rare, so even block mode cannot
	// meaningfully stall the breaker.
	Audit *audit.Log
	// Metrics, when non-nil, counts retries, breaker transitions and
	// shed calls. Independent of metrics, a traced request's span
	// (obs.SpanFrom) is always annotated with retry count and breaker
	// state.
	Metrics *obs.Metrics
}

// Resilient wraps a PDP with the protections selected by Options. It
// forwards SideEffecting, and for a side-effecting inner PDP it never
// retries and never abandons an attempt (both could fire — or
// double-fire — the side effect for a request whose decision is then
// discarded); such a PDP gets the deadline context only.
type Resilient struct {
	inner       core.PDP
	ctxInner    core.ContextPDP // inner, when context-aware (else nil)
	name        string          // precomputed: combiners call Name per decision
	effectful   bool
	nonBlocking bool // inner cannot hang; the deadline would bound nothing
	timeout     time.Duration
	retry       Policy // normalized; Attempts <= 1 means "never retry"
	breaker     *Breaker
	metrics     *obs.Metrics
}

var (
	_ core.ContextPDP   = (*Resilient)(nil)
	_ core.EffectfulPDP = (*Resilient)(nil)
)

// Wrap applies o's protections to p, innermost timeout first, then
// retries, then the breaker (a shed call fails fast without burning
// retry budget). With a zero Options it returns p unchanged.
func Wrap(p core.PDP, o Options) core.PDP {
	if o.Timeout <= 0 && o.Retry.Attempts <= 1 && o.Breaker == nil {
		return p
	}
	r := &Resilient{
		inner:       p,
		name:        "resilient(" + p.Name() + ")",
		timeout:     o.Timeout,
		effectful:   core.IsSideEffecting(p),
		nonBlocking: core.IsNonBlocking(p),
		metrics:     o.Metrics,
	}
	r.ctxInner, _ = p.(core.ContextPDP)
	if o.Retry.Attempts > 1 {
		r.retry = o.Retry.withDefaults()
	}
	if o.Breaker != nil {
		cfg := *o.Breaker
		if m := o.Metrics; m != nil {
			prev := cfg.OnStateChange
			cfg.OnStateChange = func(from, to BreakerState, reason string) {
				switch to {
				case Open:
					m.BreakerOpened.Inc()
				case HalfOpen:
					m.BreakerHalfOpen.Inc()
				case Closed:
					m.BreakerClosed.Inc()
				}
				if prev != nil {
					prev(from, to, reason)
				}
			}
		}
		if log := o.Audit; log != nil {
			name, prev := p.Name(), cfg.OnStateChange
			cfg.OnStateChange = func(from, to BreakerState, reason string) {
				log.Append(audit.Record{
					Action: "circuit-breaker",
					PDP:    name,
					Effect: to.String(),
					Source: from.String(),
					Reason: reason,
				})
				if prev != nil {
					prev(from, to, reason)
				}
			}
		}
		r.breaker = NewBreaker(cfg)
	}
	return r
}

// Name implements core.PDP.
func (r *Resilient) Name() string { return r.name }

// SideEffecting implements core.EffectfulPDP by forwarding the inner
// PDP's declaration, so combiners and caches treat the wrapped PDP
// exactly like the bare one.
func (r *Resilient) SideEffecting() bool { return r.effectful }

// Breaker exposes the per-PDP circuit breaker (nil when not enabled).
func (r *Resilient) Breaker() *Breaker { return r.breaker }

// Authorize implements core.PDP.
func (r *Resilient) Authorize(req *core.Request) core.Decision {
	return r.AuthorizeContext(context.Background(), req)
}

// AuthorizeContext implements core.ContextPDP: breaker check, then
// bounded attempts, each under the per-callout deadline.
func (r *Resilient) AuthorizeContext(ctx context.Context, req *core.Request) core.Decision {
	if r.breaker != nil && !r.breaker.Allow() {
		if r.metrics != nil {
			r.metrics.BreakerShed.Inc()
		}
		if sp := obs.SpanFrom(ctx); sp != nil {
			sp.Breaker = Open.String()
		}
		return core.ErrorDecision(r.Name(),
			fmt.Sprintf("circuit open: %s is shedding calls while %s recovers", r.Name(), r.inner.Name()))
	}
	d := r.attempt(ctx, req)
	// Inline retry loop rather than Policy.Do: the happy path (one
	// attempt, no Error) must not pay for a closure or an error value it
	// will never use. A side-effecting inner PDP never retries (the
	// effect of a discarded attempt would have fired anyway).
	if r.retry.Attempts > 1 && !r.effectful {
		tries := 0
		for try := 1; try < r.retry.Attempts && d.Effect == core.Error && ctx.Err() == nil; try++ {
			if r.retry.Sleep(ctx, r.retry.Delay(try-1)) != nil {
				break
			}
			d = r.attempt(ctx, req)
			tries++
		}
		if tries > 0 {
			if r.metrics != nil {
				r.metrics.AuthzRetries.Add(uint64(tries))
			}
			if sp := obs.SpanFrom(ctx); sp != nil {
				sp.Retries = tries
			}
		}
	}
	if r.breaker != nil {
		if d.Effect == core.Error {
			r.breaker.Failure(d.Reason)
		} else {
			r.breaker.Success()
		}
		// The span publishes only after this wrapper returns (same
		// goroutine, see core's tracing decorator), so the post-decision
		// state is what trace readers see.
		if sp := obs.SpanFrom(ctx); sp != nil {
			sp.Breaker = r.breaker.State().String()
		}
	}
	return d
}

// attempt runs one bounded evaluation of the inner PDP. A non-blocking
// inner PDP (core.NonBlockingPDP) skips the deadline machinery
// entirely: its evaluation cannot outlive any deadline, so arming one
// would be pure overhead on every call.
func (r *Resilient) attempt(ctx context.Context, req *core.Request) core.Decision {
	if r.timeout <= 0 || r.nonBlocking {
		return core.AuthorizeWithContext(ctx, r.inner, req)
	}
	if r.ctxInner != nil {
		// A context-aware PDP honours the deadline itself (and must
		// answer a cancelled context with Error, per the ContextPDP
		// contract) — no goroutine needed on the happy path.
		if ctx.Done() == nil {
			// Uncancellable parent (the sequential dispatch path): the
			// deadline timer can be armed lazily, only if the PDP blocks.
			dc := newLazyDeadline(ctx, r.timeout)
			d := r.ctxInner.AuthorizeContext(dc, req)
			dc.cancel()
			return d
		}
		actx, cancel := context.WithTimeout(ctx, r.timeout)
		defer cancel()
		return r.ctxInner.AuthorizeContext(actx, req)
	}
	if r.effectful {
		// Abandoning a side-effecting evaluation could leak its effect
		// (e.g. an allocation reservation committed after the deadline
		// with no job to carry it); run it to completion.
		return r.inner.Authorize(req)
	}
	// Watchdog: a plain PDP cannot observe the deadline, so the attempt
	// runs in a goroutine and an overrun is converted into an Error
	// decision. The late result is discarded; the goroutine exits with
	// the evaluation (it is only leaked for as long as the PDP hangs).
	ch := make(chan core.Decision, 1)
	go func() { ch <- r.inner.Authorize(req) }()
	t := time.NewTimer(r.timeout)
	defer t.Stop()
	select {
	case d := <-ch:
		return d
	case <-ctx.Done():
		return core.ErrorDecision(r.Name(), "request abandoned: "+ctx.Err().Error())
	case <-t.C:
		return core.ErrorDecision(r.Name(),
			fmt.Sprintf("callout %s timed out after %v", r.inner.Name(), r.timeout))
	}
}

// FromCalloutOptions builds the wrapper a callout chain's options ask
// for (the pdp-timeout / retries / breaker configuration-file knobs and
// their ResourceConfig equivalents). Breaker transitions are audited to
// log when it is non-nil and counted into m when it is non-nil.
func FromCalloutOptions(p core.PDP, o core.CalloutOptions, log *audit.Log, m *obs.Metrics) core.PDP {
	opts := Options{Timeout: o.PDPTimeout, Audit: log, Metrics: m}
	if o.Retries > 0 {
		opts.Retry = Policy{Attempts: o.Retries + 1, BaseDelay: o.RetryBackoff}
	}
	if o.Breaker {
		opts.Breaker = &BreakerConfig{
			Threshold: o.BreakerThreshold,
			Cooldown:  o.BreakerCooldown,
		}
	}
	return Wrap(p, opts)
}

// Install registers this package as the registry's PDP wrapper: every
// callout chain rebuilt from then on applies the chain's resilience
// options to each of its PDPs. Reconfiguring a callout type rebuilds
// its chain and therefore resets its breakers (a deliberate fresh
// start: the operator just changed what the chain means).
func Install(reg *core.Registry, log *audit.Log, m *obs.Metrics) {
	reg.SetPDPWrapper(func(p core.PDP, o core.CalloutOptions) core.PDP {
		return FromCalloutOptions(p, o, log, m)
	})
}
