package resilience

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridauth/internal/audit"
	"gridauth/internal/core"
)

// countingPDP answers with a scripted sequence of effects, then repeats
// the last one; it records every call.
type countingPDP struct {
	id     string
	script []core.Effect
	mu     sync.Mutex
	calls  int
}

func (p *countingPDP) Name() string { return p.id }

func (p *countingPDP) Authorize(req *core.Request) core.Decision {
	p.mu.Lock()
	i := p.calls
	p.calls++
	p.mu.Unlock()
	if i >= len(p.script) {
		i = len(p.script) - 1
	}
	switch p.script[i] {
	case core.Permit:
		return core.PermitDecision(p.id, "ok")
	case core.Deny:
		return core.DenyDecision(p.id, "no")
	case core.NotApplicable:
		return core.AbstainDecision(p.id, "abstain")
	default:
		return core.ErrorDecision(p.id, "backend down")
	}
}

func (p *countingPDP) callCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// hangingPDP blocks until released. It is deliberately NOT context-aware:
// the watchdog path is what it exercises.
type hangingPDP struct {
	release chan struct{}
	started atomic.Int64
}

func (p *hangingPDP) Name() string { return "hanger" }

func (p *hangingPDP) Authorize(req *core.Request) core.Decision {
	p.started.Add(1)
	<-p.release
	return core.PermitDecision("hanger", "finally")
}

// effectfulPDP is side-effecting: each Authorize "fires" once.
type effectfulPDP struct {
	fired  atomic.Int64
	effect core.Effect
}

func (p *effectfulPDP) Name() string        { return "effectful" }
func (p *effectfulPDP) SideEffecting() bool { return true }
func (p *effectfulPDP) Authorize(req *core.Request) core.Decision {
	p.fired.Add(1)
	if p.effect == core.Permit {
		return core.PermitDecision("effectful", "reserved")
	}
	return core.ErrorDecision("effectful", "backend down")
}

// instant is a Sleep that never actually waits (deterministic tests).
func instant(ctx context.Context, d time.Duration) error { return ctx.Err() }

func req() *core.Request { return &core.Request{Subject: "/O=Grid/CN=Bo", Action: "start"} }

func TestPolicyDoRetriesTransientOnly(t *testing.T) {
	boom := errors.New("boom")
	t.Run("transient retries up to budget", func(t *testing.T) {
		calls := 0
		err := Policy{Attempts: 3, Sleep: instant}.Do(context.Background(), func(int) (error, bool) {
			calls++
			return boom, true
		})
		if !errors.Is(err, boom) || calls != 3 {
			t.Fatalf("err=%v calls=%d, want boom after 3", err, calls)
		}
	})
	t.Run("terminal failure stops immediately", func(t *testing.T) {
		calls := 0
		err := Policy{Attempts: 3, Sleep: instant}.Do(context.Background(), func(int) (error, bool) {
			calls++
			return boom, false
		})
		if !errors.Is(err, boom) || calls != 1 {
			t.Fatalf("err=%v calls=%d, want boom after 1", err, calls)
		}
	})
	t.Run("success stops", func(t *testing.T) {
		calls := 0
		err := Policy{Attempts: 3, Sleep: instant}.Do(context.Background(), func(int) (error, bool) {
			calls++
			if calls < 2 {
				return boom, true
			}
			return nil, false
		})
		if err != nil || calls != 2 {
			t.Fatalf("err=%v calls=%d, want nil after 2", err, calls)
		}
	})
	t.Run("context death during backoff keeps the domain error", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		calls := 0
		err := Policy{
			Attempts: 5,
			Sleep: func(ctx context.Context, d time.Duration) error {
				cancel()
				return ctx.Err()
			},
		}.Do(ctx, func(int) (error, bool) {
			calls++
			return boom, true
		})
		if !errors.Is(err, boom) || calls != 1 {
			t.Fatalf("err=%v calls=%d, want the attempt's own error after 1 call", err, calls)
		}
	})
}

func TestPolicyDelayGrowsAndCaps(t *testing.T) {
	p := Policy{
		BaseDelay:  10 * time.Millisecond,
		MaxDelay:   40 * time.Millisecond,
		Multiplier: 2,
		Jitter:     0,                           // Jitter==0 selects the 0.5 default...
		Rand:       func() float64 { return 1 }, // ...so pin rand to the top of the band
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	// Jitter spreads below the deterministic ceiling.
	p.Rand = func() float64 { return 0 }
	if got := p.Delay(0); got != 5*time.Millisecond {
		t.Errorf("fully-jittered Delay(0) = %v, want 5ms (half the base)", got)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Threshold: 3,
		Cooldown:  time.Minute,
		Clock:     func() time.Time { return now },
		OnStateChange: func(from, to BreakerState, reason string) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})

	// Failures below the threshold keep the breaker closed; a success
	// resets the streak.
	b.Failure("f1")
	b.Failure("f2")
	b.Success()
	b.Failure("f1")
	b.Failure("f2")
	if b.State() != Closed {
		t.Fatalf("state after sub-threshold failures = %v", b.State())
	}
	b.Failure("f3")
	if b.State() != Open {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}

	// Open sheds until the cooldown elapses.
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	if b.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", b.Shed())
	}

	// Cooldown elapsed: half-open admits exactly the probe budget.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker exceeded its probe budget")
	}

	// A failed probe re-opens; the next cooldown+probe+success closes.
	b.Failure("probe died")
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}

	want := []string{"closed->open", "open->half-open", "half-open->open", "open->half-open", "half-open->closed"}
	if strings.Join(transitions, " ") != strings.Join(want, " ") {
		t.Errorf("transitions = %v, want %v", transitions, want)
	}
}

func TestWrapZeroOptionsIsPassthrough(t *testing.T) {
	p := &countingPDP{id: "p", script: []core.Effect{core.Permit}}
	if got := Wrap(p, Options{}); got != core.PDP(p) {
		t.Fatalf("Wrap with zero options wrapped anyway: %T", got)
	}
}

func TestResilientForwardsNameAndSideEffect(t *testing.T) {
	eff := &effectfulPDP{effect: core.Permit}
	w := Wrap(eff, Options{Timeout: time.Second})
	if w.Name() != "resilient(effectful)" {
		t.Errorf("Name = %q", w.Name())
	}
	if !core.IsSideEffecting(w) {
		t.Error("side-effect declaration not forwarded")
	}
	plain := Wrap(&countingPDP{id: "p", script: []core.Effect{core.Permit}}, Options{Timeout: time.Second})
	if core.IsSideEffecting(plain) {
		t.Error("plain PDP reported side-effecting")
	}
}

func TestTimeoutWatchdogConvertsOverrunToError(t *testing.T) {
	h := &hangingPDP{release: make(chan struct{})}
	defer close(h.release)
	w := Wrap(h, Options{Timeout: 20 * time.Millisecond})
	d := core.AuthorizeWithContext(context.Background(), w, req())
	if d.Effect != core.Error || !strings.Contains(d.Reason, "timed out") {
		t.Fatalf("decision = %+v, want timeout Error", d)
	}
}

func TestTimeoutAbandonedRequestReportsAbandonment(t *testing.T) {
	h := &hangingPDP{release: make(chan struct{})}
	defer close(h.release)
	w := Wrap(h, Options{Timeout: time.Minute}).(*Resilient)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for h.started.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	d := w.AuthorizeContext(ctx, req())
	if d.Effect != core.Error || !strings.Contains(d.Reason, "abandoned") {
		t.Fatalf("decision = %+v, want abandonment Error", d)
	}
}

// deadlinePDP asserts it received a context with a deadline (the
// goroutine-free path for context-aware PDPs).
type deadlinePDP struct{ sawDeadline atomic.Bool }

func (p *deadlinePDP) Name() string { return "deadline" }
func (p *deadlinePDP) Authorize(req *core.Request) core.Decision {
	return p.AuthorizeContext(context.Background(), req)
}
func (p *deadlinePDP) AuthorizeContext(ctx context.Context, req *core.Request) core.Decision {
	if _, ok := ctx.Deadline(); ok {
		p.sawDeadline.Store(true)
	}
	return core.PermitDecision("deadline", "ok")
}

func TestTimeoutPassesDeadlineToContextPDP(t *testing.T) {
	p := &deadlinePDP{}
	w := Wrap(p, Options{Timeout: time.Second})
	if d := core.AuthorizeWithContext(context.Background(), w, req()); d.Effect != core.Permit {
		t.Fatalf("decision = %+v", d)
	}
	if !p.sawDeadline.Load() {
		t.Error("context-aware PDP did not receive the deadline context")
	}
}

// nonBlockingPDP declares it cannot hang, so a timeout wrapper must
// not spend a deadline context on it.
type nonBlockingPDP struct{ deadlinePDP }

func (p *nonBlockingPDP) NonBlocking() bool { return true }

func TestTimeoutSkipsNonBlockingPDP(t *testing.T) {
	p := &nonBlockingPDP{}
	w := Wrap(p, Options{Timeout: time.Second})
	if d := core.AuthorizeWithContext(context.Background(), w, req()); d.Effect != core.Permit {
		t.Fatalf("decision = %+v", d)
	}
	if p.sawDeadline.Load() {
		t.Error("non-blocking PDP was handed a deadline context; the timeout should be waived")
	}
}

func TestRetryRecoversTransientError(t *testing.T) {
	p := &countingPDP{id: "p", script: []core.Effect{core.Error, core.Error, core.Permit}}
	w := Wrap(p, Options{Retry: Policy{Attempts: 3, Sleep: instant}})
	d := core.AuthorizeWithContext(context.Background(), w, req())
	if d.Effect != core.Permit || p.callCount() != 3 {
		t.Fatalf("decision = %+v after %d calls, want permit after 3", d, p.callCount())
	}
}

func TestRetryNeverRetriesDenyOrAbstain(t *testing.T) {
	for _, eff := range []core.Effect{core.Permit, core.Deny, core.NotApplicable} {
		p := &countingPDP{id: "p", script: []core.Effect{eff}}
		w := Wrap(p, Options{Retry: Policy{Attempts: 5, Sleep: instant}})
		d := core.AuthorizeWithContext(context.Background(), w, req())
		if d.Effect != eff || p.callCount() != 1 {
			t.Errorf("%v: decision = %+v after %d calls, want 1 call", eff, d, p.callCount())
		}
	}
}

func TestRetryExcludesSideEffectingPDP(t *testing.T) {
	eff := &effectfulPDP{effect: core.Error}
	w := Wrap(eff, Options{Retry: Policy{Attempts: 5, Sleep: instant}})
	d := core.AuthorizeWithContext(context.Background(), w, req())
	if d.Effect != core.Error {
		t.Fatalf("decision = %+v", d)
	}
	if eff.fired.Load() != 1 {
		t.Fatalf("side-effecting PDP fired %d times under retry, want exactly 1", eff.fired.Load())
	}
}

func TestBreakerShedsAndRecoversThroughWrapper(t *testing.T) {
	now := time.Unix(0, 0)
	log := audit.NewLog(64)
	p := &countingPDP{id: "backend", script: []core.Effect{core.Error, core.Error, core.Permit}}
	w := Wrap(p, Options{
		Breaker: &BreakerConfig{Threshold: 2, Cooldown: time.Minute, Clock: func() time.Time { return now }},
		Audit:   log,
	}).(*Resilient)

	// Two errors trip the breaker.
	for i := 0; i < 2; i++ {
		if d := w.Authorize(req()); d.Effect != core.Error {
			t.Fatalf("call %d = %+v", i, d)
		}
	}
	if w.Breaker().State() != Open {
		t.Fatalf("breaker = %v, want open", w.Breaker().State())
	}
	// While open the backend is not consulted.
	before := p.callCount()
	d := w.Authorize(req())
	if d.Effect != core.Error || !strings.Contains(d.Reason, "circuit open") {
		t.Fatalf("shed decision = %+v", d)
	}
	if p.callCount() != before {
		t.Fatal("open breaker still consulted the backend")
	}
	// Cooldown elapses; the probe hits the healed backend and closes.
	now = now.Add(2 * time.Minute)
	if d := w.Authorize(req()); d.Effect != core.Permit {
		t.Fatalf("probe decision = %+v, want permit", d)
	}
	if w.Breaker().State() != Closed {
		t.Fatalf("breaker = %v after successful probe, want closed", w.Breaker().State())
	}

	// Transitions were audited in order with the PDP named.
	recs := log.Filter(func(r audit.Record) bool { return r.Action == "circuit-breaker" })
	if len(recs) != 3 {
		t.Fatalf("audited transitions = %d, want 3: %+v", len(recs), recs)
	}
	wantEffects := []string{"open", "half-open", "closed"}
	for i, r := range recs {
		if r.Effect != wantEffects[i] || r.PDP != "backend" {
			t.Errorf("record %d = {PDP:%s Effect:%s}, want {backend %s}", i, r.PDP, r.Effect, wantEffects[i])
		}
	}
}

func TestFromCalloutOptionsMapsKnobs(t *testing.T) {
	p := &countingPDP{id: "p", script: []core.Effect{core.Permit}}
	if got := FromCalloutOptions(p, core.CalloutOptions{}, nil, nil); got != core.PDP(p) {
		t.Fatal("zero callout options should not wrap")
	}
	w := FromCalloutOptions(p, core.CalloutOptions{PDPTimeout: time.Second, Retries: 2, Breaker: true}, nil, nil)
	r, ok := w.(*Resilient)
	if !ok {
		t.Fatalf("wrapped type %T", w)
	}
	if r.retry.Attempts != 3 {
		t.Errorf("Attempts = %d, want retries+1 = 3", r.retry.Attempts)
	}
	if r.Breaker() == nil {
		t.Error("breaker not built")
	}
}

func TestInstallWrapsRegistryChains(t *testing.T) {
	reg := core.NewRegistry()
	backend := &countingPDP{id: "backend", script: []core.Effect{core.Error, core.Permit}}
	reg.Bind(core.CalloutJobManager, backend)
	reg.SetCalloutOptions(core.CalloutJobManager, core.CalloutOptions{Retries: 2, RetryBackoff: time.Nanosecond})
	Install(reg, nil, nil)
	d := reg.Invoke(core.CalloutJobManager, req())
	if d.Effect != core.Permit {
		t.Fatalf("decision = %+v, want retried permit", d)
	}
	if backend.callCount() != 2 {
		t.Fatalf("backend consulted %d times, want 2", backend.callCount())
	}
}
