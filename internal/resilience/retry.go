// Package resilience hardens authorization callouts against the
// failure modes the paper's deployment model implies but its prototype
// ignores: the PDPs behind a callout (Akenti servers, CAS queries) are
// remote, slow and intermittently unavailable, yet a PEP must keep
// answering. The package wraps any core.PDP with a per-callout
// deadline, bounded retries with jittered exponential backoff for
// transient Error decisions, and a per-PDP circuit breaker, and it
// defines the one retry policy the rest of the system shares (the GRAM
// client uses it for redials and for retryable management failures, so
// connection-level and PDP-level transients back off identically).
//
// What the wrapper never does is change an authorization outcome:
// Permit, Deny and NotApplicable pass through untouched, and every
// degradation it introduces surfaces as the paper's third decision
// class — Error, "authorization system failure" — which enforcement
// points already fail closed on.
package resilience

import (
	"context"
	"math/rand"
	"time"
)

// Policy configures bounded retries with jittered exponential backoff.
// The zero value selects the documented defaults; Attempts <= 1 means
// "try once, never retry".
type Policy struct {
	// Attempts is the total number of tries, first one included
	// (0 selects 3).
	Attempts int
	// BaseDelay is the backoff before the first retry (0 selects 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (0 selects 1s).
	MaxDelay time.Duration
	// Multiplier grows the delay between retries (0 selects 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1]: the slept delay is d*(1-Jitter) + rand*d*Jitter, so
	// synchronized clients spread out instead of retrying in lockstep
	// (0 selects 0.5; set >= 1 for full jitter).
	Jitter float64
	// Rand supplies jitter randomness in [0, 1). Nil selects the shared
	// math/rand source; tests pass a seeded source for determinism.
	Rand func() float64
	// Sleep waits between attempts, returning early if ctx is done. Nil
	// selects a timer-based wait; tests substitute a virtual clock.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	if p.Sleep == nil {
		p.Sleep = sleepContext
	}
	return p
}

// sleepContext waits d or until ctx is done, whichever comes first.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Delay returns the jittered backoff before retry number retry (0 is
// the delay after the first failed attempt).
func (p Policy) Delay(retry int) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 0; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	jittered := d*(1-p.Jitter) + p.Rand()*d*p.Jitter
	return time.Duration(jittered)
}

// Do runs op until it succeeds, it fails terminally, the attempt budget
// is exhausted, or ctx is done. op returns the attempt's error and
// whether a failure is transient (worth retrying); a nil error always
// stops. The error returned is the LAST attempt's — callers keep their
// domain error, not a wrapper.
func (p Policy) Do(ctx context.Context, op func(attempt int) (err error, transient bool)) error {
	p = p.withDefaults()
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		var transient bool
		err, transient = op(attempt)
		if err == nil || !transient {
			return err
		}
		if attempt == p.Attempts-1 {
			break
		}
		if p.Sleep(ctx, p.Delay(attempt)) != nil {
			// The caller's context ended mid-backoff; its own error
			// (from the last real attempt) is more useful than ctx's.
			return err
		}
	}
	return err
}
