package resilience

import (
	"context"
	"testing"
	"time"

	"gridauth/internal/core"
)

type benchPDP struct{}

func (benchPDP) Name() string { return "bench" }
func (benchPDP) Authorize(req *core.Request) core.Decision {
	return core.PermitDecision("bench", "ok")
}
func (benchPDP) AuthorizeContext(ctx context.Context, req *core.Request) core.Decision {
	if err := ctx.Err(); err != nil {
		return core.ErrorDecision("bench", err.Error())
	}
	return core.PermitDecision("bench", "ok")
}

func BenchmarkWrapMicro(b *testing.B) {
	var inner benchPDP
	req := &core.Request{}
	full := Options{Timeout: 250 * time.Millisecond,
		Retry:   Policy{Attempts: 3, BaseDelay: 5 * time.Millisecond},
		Breaker: &BreakerConfig{Threshold: 5, Cooldown: time.Second}}
	bench := func(p core.PDP) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Authorize(req)
			}
		}
	}
	b.Run("bare", bench(inner))
	b.Run("retry-only", bench(Wrap(inner, Options{Retry: full.Retry})))
	b.Run("breaker-only", bench(Wrap(inner, Options{Breaker: full.Breaker})))
	b.Run("timeout-only", bench(Wrap(inner, Options{Timeout: full.Timeout})))
	b.Run("full", bench(Wrap(inner, full)))
	b.Run("full-nonblocking", bench(Wrap(nbBenchPDP{}, full)))
}

// nbBenchPDP additionally declares it cannot hang, so the wrapper
// skips the deadline context (the production shape of in-process
// policy PDPs).
type nbBenchPDP struct{ benchPDP }

func (nbBenchPDP) NonBlocking() bool { return true }
