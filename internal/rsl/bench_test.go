package rsl

import "testing"

// Parsing and canonicalization micro-benchmarks (the repo-level P3 sweep
// measures scaling; these pin the common cases).

const benchJob = `&(executable=TRANSP)(directory="/sandbox/services")(count=16)(maxtime=120)(jobtag=NFC)(arguments=shot 104329 "run B")`

func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(benchJob)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchJob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseSpec(benchJob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpecUnparse(b *testing.B) {
	spec, err := ParseSpec(benchJob)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = spec.Unparse()
	}
}

func BenchmarkCompareNumeric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !Compare("15", OpLt, "16") {
			b.Fatal("wrong")
		}
	}
}
