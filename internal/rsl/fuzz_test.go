package rsl

import (
	"errors"
	"strings"
	"testing"
)

// fuzzSeeds are valid and near-valid RSL specifications covering every
// syntactic construct: the three boolean operators, nesting, implicit
// conjunction, all six relation operators, multi-value relations,
// quoting (both styles, with doubled-quote escapes) and variable
// references.
var fuzzSeeds = []string{
	"&(executable=/bin/date)(count=4)",
	"|(queue=fast)(queue=slow)",
	"+(&(executable=a))(&(executable=b))",
	"(executable=/bin/true)",
	"(a=1)(b=2)",
	"&(count>=2)(count<=8)(maxtime<60)(queue!=fast)(x>1)",
	`&(arguments=a "b c" 'd''e')`,
	`&(dir=$(HOME))(executable=$(GLOBUS_LOCATION))`,
	"&(x=\"\")",
	"&(a=1)(|(b=2)(c=3))",
	"&(&(a=1))",
	"& (a = 1) \t\n (b = 2)",
	"",
	"&",
	"&(a)",
	"&(a=)",
	"&(a=1",
	"&(a=$)",
	"&(a=$(x)",
	"&(a=\"unterminated",
}

// FuzzParse checks the parser on arbitrary input for two properties:
// it never panics, and a successful parse is a fixed point under
// Unparse — re-parsing the canonical rendering succeeds and renders
// identically. An authorization spec whose canonical form is unstable
// would break decision-cache keys (core.DecisionCacheKey hashes the
// canonical form).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		node, err := Parse(input)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("Parse(%q) returned a non-SyntaxError: %v", input, err)
			}
			if se.Offset < 0 || se.Offset > len(input) {
				t.Fatalf("Parse(%q): error offset %d out of range [0,%d]", input, se.Offset, len(input))
			}
			return
		}
		canon := node.Unparse()
		node2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q) succeeded but its unparse %q does not re-parse: %v", input, canon, err)
		}
		if got := node2.Unparse(); got != canon {
			t.Fatalf("unparse not a fixed point: %q -> %q -> %q", input, canon, got)
		}
	})
}

// FuzzParseSpec checks the job-description flattening path: no panics,
// flattening only ever fails with a descriptive error, and a flattened
// spec's canonical form survives a ParseSpec round trip. This is the
// exact path untrusted job requests take into the policy engine
// (gram handleJobRequest → rsl.ParseSpec → policy evaluation).
func FuzzParseSpec(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseSpec(input)
		if err != nil {
			if !strings.Contains(err.Error(), "rsl") {
				t.Fatalf("ParseSpec(%q) error lost its package prefix: %v", input, err)
			}
			return
		}
		canon := spec.Unparse()
		spec2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("ParseSpec(%q) succeeded but canonical form %q does not re-parse: %v", input, canon, err)
		}
		if got := spec2.Unparse(); got != canon {
			t.Fatalf("canonical form not stable: %q -> %q -> %q", input, canon, got)
		}
		if !spec.Equal(spec2) {
			t.Fatalf("round-tripped spec differs: %q vs %q", spec, spec2)
		}
	})
}
