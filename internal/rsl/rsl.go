// Package rsl implements the Globus Toolkit 2 Resource Specification
// Language (RSL v1.0) as used by GRAM job descriptions and, in this
// repository, by the fine-grain authorization policy language layered on
// top of it.
//
// RSL is an attribute-value language. A specification is a boolean
// combination of relations:
//
//	&(executable=/bin/date)(count=4)(maxMemory>=64)
//
// The operators are & (conjunction), | (disjunction) and + (multi-request).
// Relations compare an attribute against one or more values using one of
// =, !=, <, <=, > or >=. Values are unquoted literals, quoted strings
// ("..." or '...', with doubled quotes as escapes) or variable references
// of the form $(NAME).
//
// Attribute names are case-insensitive; this package canonicalizes them to
// lower case, matching GT2 behaviour.
package rsl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Op identifies a relation operator.
type Op int

// Relation operators in GT2 RSL.
const (
	OpEq Op = iota + 1
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the RSL spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// BoolOp identifies a boolean combination operator.
type BoolOp int

// Boolean operators in GT2 RSL.
const (
	And BoolOp = iota + 1
	Or
	Multi
)

// String returns the RSL spelling of the boolean operator.
func (b BoolOp) String() string {
	switch b {
	case And:
		return "&"
	case Or:
		return "|"
	case Multi:
		return "+"
	default:
		return fmt.Sprintf("BoolOp(%d)", int(b))
	}
}

// Node is a node of an RSL syntax tree: either a *Boolean or a *Relation.
type Node interface {
	// Unparse renders the node in canonical RSL syntax.
	Unparse() string
}

// Boolean is a boolean combination of sub-specifications.
type Boolean struct {
	Op       BoolOp
	Children []Node
}

// Unparse renders the boolean in canonical RSL syntax.
func (b *Boolean) Unparse() string {
	var sb strings.Builder
	sb.WriteString(b.Op.String())
	for _, c := range b.Children {
		if _, ok := c.(*Relation); ok {
			sb.WriteString(c.Unparse())
			continue
		}
		sb.WriteString("(")
		sb.WriteString(c.Unparse())
		sb.WriteString(")")
	}
	return sb.String()
}

// Relation is a single attribute comparison, e.g. (count<4) or
// (arguments = a b c).
type Relation struct {
	Attribute string
	Op        Op
	Values    []Value
}

// Unparse renders the relation in canonical RSL syntax.
func (r *Relation) Unparse() string {
	var sb strings.Builder
	sb.WriteString("(")
	sb.WriteString(r.Attribute)
	sb.WriteString(r.Op.String())
	for i, v := range r.Values {
		if i > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(v.Unparse())
	}
	sb.WriteString(")")
	return sb.String()
}

// Value is a single RSL value: a literal or a variable reference.
type Value struct {
	// Literal holds the value text when Variable is empty.
	Literal string
	// Variable names a $(NAME) reference to be resolved at evaluation time.
	Variable string
}

// Lit returns a literal Value.
func Lit(s string) Value { return Value{Literal: s} }

// Var returns a variable-reference Value.
func Var(name string) Value { return Value{Variable: name} }

// IsVariable reports whether the value is a variable reference.
func (v Value) IsVariable() bool { return v.Variable != "" }

// Unparse renders the value, quoting when necessary.
func (v Value) Unparse() string {
	if v.IsVariable() {
		return "$(" + v.Variable + ")"
	}
	if v.Literal == "" || strings.ContainsAny(v.Literal, " \t\r\n()=<>!\"'$") {
		return `"` + strings.ReplaceAll(v.Literal, `"`, `""`) + `"`
	}
	return v.Literal
}

// Resolve returns the value's text, substituting variables from vars.
// Unbound variables resolve to the empty string.
func (v Value) Resolve(vars map[string]string) string {
	if v.IsVariable() {
		return vars[v.Variable]
	}
	return v.Literal
}

// SyntaxError describes an RSL parse failure with its input offset.
type SyntaxError struct {
	Offset int
	Msg    string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rsl: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// Parse parses an RSL specification. The top level may be a bare relation
// list, which is treated as an implicit conjunction, matching how GT2
// tools accept "(executable=a)(count=2)".
func Parse(input string) (Node, error) {
	p := &parser{src: input}
	p.skipSpace()
	node, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, &SyntaxError{Offset: p.pos, Msg: "trailing input"}
	}
	return node, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// parseSpec parses either an explicit boolean (&, |, +) or an implicit
// conjunction of parenthesized items.
func (p *parser) parseSpec() (Node, error) {
	p.skipSpace()
	switch p.peek() {
	case '&', '|', '+':
		op := And
		switch p.src[p.pos] {
		case '|':
			op = Or
		case '+':
			op = Multi
		}
		p.pos++
		children, err := p.parseItems()
		if err != nil {
			return nil, err
		}
		if len(children) == 0 {
			return nil, p.errf("empty %s specification", op)
		}
		return &Boolean{Op: op, Children: children}, nil
	case '(':
		children, err := p.parseItems()
		if err != nil {
			return nil, err
		}
		if len(children) == 1 {
			return children[0], nil
		}
		if len(children) == 0 {
			return nil, p.errf("empty specification")
		}
		return &Boolean{Op: And, Children: children}, nil
	case 0:
		return nil, p.errf("empty input")
	default:
		return nil, p.errf("expected '&', '|', '+' or '(', found %q", p.src[p.pos])
	}
}

// parseItems parses a sequence of parenthesized items: each is either a
// relation or a nested specification.
func (p *parser) parseItems() ([]Node, error) {
	var items []Node
	for {
		p.skipSpace()
		if p.peek() != '(' {
			return items, nil
		}
		p.pos++ // consume '('
		p.skipSpace()
		var (
			child Node
			err   error
		)
		switch p.peek() {
		case '&', '|', '+', '(':
			child, err = p.parseSpec()
		default:
			child, err = p.parseRelation()
		}
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		items = append(items, child)
	}
}

// parseRelation parses "attribute op value...". The opening '(' has been
// consumed; the closing ')' is left for the caller.
func (p *parser) parseRelation() (Node, error) {
	attr, err := p.parseWord()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	op, err := p.parseOp()
	if err != nil {
		return nil, err
	}
	var values []Value
	for {
		p.skipSpace()
		c := p.peek()
		if c == ')' || c == 0 {
			break
		}
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		values = append(values, v)
	}
	if len(values) == 0 {
		return nil, p.errf("relation %q has no value", attr)
	}
	return &Relation{Attribute: strings.ToLower(attr), Op: op, Values: values}, nil
}

func (p *parser) parseWord() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && isWordByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected attribute name")
	}
	return p.src[start:p.pos], nil
}

func isWordByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == '-' || c == '.':
		return true
	default:
		return false
	}
}

func (p *parser) parseOp() (Op, error) {
	if p.pos >= len(p.src) {
		return 0, p.errf("expected relation operator")
	}
	switch p.src[p.pos] {
	case '=':
		p.pos++
		return OpEq, nil
	case '!':
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '=' {
			p.pos += 2
			return OpNeq, nil
		}
		return 0, p.errf("expected '!='")
	case '<':
		p.pos++
		if p.peek() == '=' {
			p.pos++
			return OpLe, nil
		}
		return OpLt, nil
	case '>':
		p.pos++
		if p.peek() == '=' {
			p.pos++
			return OpGe, nil
		}
		return OpGt, nil
	default:
		return 0, p.errf("expected relation operator, found %q", p.src[p.pos])
	}
}

func (p *parser) parseValue() (Value, error) {
	switch c := p.peek(); c {
	case '"', '\'':
		return p.parseQuoted(c)
	case '$':
		return p.parseVariable()
	default:
		start := p.pos
		for p.pos < len(p.src) && !isValueTerminator(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return Value{}, p.errf("expected value")
		}
		return Lit(p.src[start:p.pos]), nil
	}
}

func isValueTerminator(c byte) bool {
	switch c {
	case ' ', '\t', '\r', '\n', '(', ')', '"', '\'', '$':
		return true
	default:
		return false
	}
}

func (p *parser) parseQuoted(quote byte) (Value, error) {
	p.pos++ // opening quote
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == quote {
			// Doubled quote is an escaped literal quote.
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == quote {
				sb.WriteByte(quote)
				p.pos += 2
				continue
			}
			p.pos++
			return Lit(sb.String()), nil
		}
		sb.WriteByte(c)
		p.pos++
	}
	return Value{}, p.errf("unterminated quoted value")
}

func (p *parser) parseVariable() (Value, error) {
	p.pos++ // '$'
	if p.peek() != '(' {
		return Value{}, p.errf("expected '(' after '$'")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ')' {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return Value{}, p.errf("unterminated variable reference")
	}
	name := p.src[start:p.pos]
	p.pos++
	if name == "" {
		return Value{}, p.errf("empty variable name")
	}
	return Var(name), nil
}

// Spec is the canonical flattened form of a purely conjunctive, purely
// equality-relation RSL specification: the form GRAM job descriptions
// take. Attribute names are lower case. Each attribute maps to the list
// of values given for it.
type Spec struct {
	attrs map[string][]string
	// canon memoizes the canonical Unparse form; mutators clear it.
	// Atomic so concurrent readers of a shared, no-longer-mutated spec
	// (the supported sharing pattern) may race to fill it safely.
	canon atomic.Pointer[string]
}

// NewSpec returns an empty specification.
func NewSpec() *Spec {
	return &Spec{attrs: make(map[string][]string)}
}

// ParseSpec parses input and flattens it into a Spec. It fails if the
// specification uses disjunction, multi-requests or non-equality
// relations, since a job description must be a simple conjunction.
func ParseSpec(input string) (*Spec, error) {
	node, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return Flatten(node, nil)
}

// Flatten converts a conjunctive equality tree into a Spec, resolving
// variable references against vars.
func Flatten(node Node, vars map[string]string) (*Spec, error) {
	s := NewSpec()
	if err := flattenInto(s, node, vars); err != nil {
		return nil, err
	}
	return s, nil
}

func flattenInto(s *Spec, node Node, vars map[string]string) error {
	switch n := node.(type) {
	case *Relation:
		if n.Op != OpEq {
			return fmt.Errorf("rsl: job description may only use '=', attribute %q uses %q", n.Attribute, n.Op)
		}
		for _, v := range n.Values {
			s.Add(n.Attribute, v.Resolve(vars))
		}
		return nil
	case *Boolean:
		if n.Op != And {
			return fmt.Errorf("rsl: job description may not use %q", n.Op)
		}
		for _, c := range n.Children {
			if err := flattenInto(s, c, vars); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("rsl: unknown node type %T", node)
	}
}

// Add appends a value for an attribute. The attribute name is
// canonicalized to lower case.
func (s *Spec) Add(attr, value string) *Spec {
	attr = strings.ToLower(attr)
	s.attrs[attr] = append(s.attrs[attr], value)
	s.canon.Store(nil)
	return s
}

// Set replaces the values of an attribute.
func (s *Spec) Set(attr string, values ...string) *Spec {
	attr = strings.ToLower(attr)
	s.attrs[attr] = append([]string(nil), values...)
	s.canon.Store(nil)
	return s
}

// Delete removes an attribute.
func (s *Spec) Delete(attr string) {
	delete(s.attrs, strings.ToLower(attr))
	s.canon.Store(nil)
}

// Has reports whether the attribute is present with at least one value.
func (s *Spec) Has(attr string) bool {
	return len(s.attrs[strings.ToLower(attr)]) > 0
}

// Get returns the first value of the attribute, or "" when absent.
func (s *Spec) Get(attr string) string {
	vs := s.attrs[strings.ToLower(attr)]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// Values returns a copy of all values of the attribute.
func (s *Spec) Values(attr string) []string {
	vs := s.attrs[strings.ToLower(attr)]
	if len(vs) == 0 {
		return nil
	}
	return append([]string(nil), vs...)
}

// Ref returns the attribute's values without copying. The returned slice
// is shared with the spec: callers must not modify it, and it goes stale
// if the spec is mutated afterwards. Evaluation hot paths (the compiled
// policy engine) use it to avoid the per-lookup allocation Values makes.
func (s *Spec) Ref(attr string) []string {
	return s.attrs[strings.ToLower(attr)]
}

// RefLower is Ref for an attribute name the caller guarantees is
// already lower case, skipping the case fold — the compiled policy
// engine's per-clause lookup. The sharing caveats of Ref apply.
func (s *Spec) RefLower(attr string) []string {
	return s.attrs[attr]
}

// Attributes returns the sorted attribute names present in the spec.
func (s *Spec) Attributes() []string {
	names := make([]string, 0, len(s.attrs))
	for k := range s.attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of attributes in the spec.
func (s *Spec) Len() int { return len(s.attrs) }

// Clone returns a deep copy of the spec.
func (s *Spec) Clone() *Spec {
	c := &Spec{attrs: make(map[string][]string, len(s.attrs))}
	for k, vs := range s.attrs {
		c.attrs[k] = append([]string(nil), vs...)
	}
	return c
}

// Unparse renders the spec in canonical (sorted, conjunctive) RSL form.
// The form is memoized: repeated calls on an unmodified spec (one
// canonical digest per authorization layer, logging, caching) pay for
// the sort and rendering once.
func (s *Spec) Unparse() string {
	if p := s.canon.Load(); p != nil {
		return *p
	}
	var sb strings.Builder
	sb.WriteString("&")
	for _, attr := range s.Attributes() {
		sb.WriteString("(")
		sb.WriteString(attr)
		sb.WriteString("=")
		for i, v := range s.attrs[attr] {
			if i > 0 {
				sb.WriteString(" ")
			}
			sb.WriteString(Lit(v).Unparse())
		}
		sb.WriteString(")")
	}
	out := sb.String()
	s.canon.Store(&out)
	return out
}

// String implements fmt.Stringer.
func (s *Spec) String() string { return s.Unparse() }

// Equal reports whether two specs contain the same attributes and values
// in the same order.
func (s *Spec) Equal(o *Spec) bool {
	if s.Len() != o.Len() {
		return false
	}
	for k, vs := range s.attrs {
		ovs, ok := o.attrs[k]
		if !ok || len(ovs) != len(vs) {
			return false
		}
		for i := range vs {
			if vs[i] != ovs[i] {
				return false
			}
		}
	}
	return true
}

// Compare evaluates "lhs op rhs" using numeric comparison when both sides
// parse as numbers and byte-wise string comparison otherwise, matching how
// GT2 RSL compares values such as (count<4).
func Compare(lhs string, op Op, rhs string) bool {
	ln, lerr := strconv.ParseFloat(strings.TrimSpace(lhs), 64)
	rn, rerr := strconv.ParseFloat(strings.TrimSpace(rhs), 64)
	if lerr == nil && rerr == nil {
		switch op {
		case OpEq:
			return ln == rn
		case OpNeq:
			return ln != rn
		case OpLt:
			return ln < rn
		case OpLe:
			return ln <= rn
		case OpGt:
			return ln > rn
		case OpGe:
			return ln >= rn
		}
	}
	switch op {
	case OpEq:
		return lhs == rhs
	case OpNeq:
		return lhs != rhs
	case OpLt:
		return lhs < rhs
	case OpLe:
		return lhs <= rhs
	case OpGt:
		return lhs > rhs
	case OpGe:
		return lhs >= rhs
	default:
		return false
	}
}

// MultiRequests splits a top-level multi-request (+) into its component
// specifications. A non-multi node yields itself as the single component.
func MultiRequests(node Node) []Node {
	if b, ok := node.(*Boolean); ok && b.Op == Multi {
		return append([]Node(nil), b.Children...)
	}
	return []Node{node}
}

// Validate checks a job-description Spec for the attributes GRAM requires
// and for well-formed numeric attributes. It returns nil when the spec is
// a plausible job request.
func Validate(s *Spec) error {
	if !s.Has("executable") {
		return fmt.Errorf("rsl: job description missing required attribute %q", "executable")
	}
	for _, attr := range []string{"count", "maxtime", "maxmemory", "minmemory", "hostcount"} {
		if !s.Has(attr) {
			continue
		}
		v := s.Get(attr)
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("rsl: attribute %q must be an integer, got %q", attr, v)
		}
		if n < 0 {
			return fmt.Errorf("rsl: attribute %q must be non-negative, got %d", attr, n)
		}
	}
	return nil
}
