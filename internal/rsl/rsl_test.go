package rsl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, in string) Node {
	t.Helper()
	n, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	return n
}

func TestParseSimpleConjunction(t *testing.T) {
	n := mustParse(t, `&(executable=/bin/date)(count=4)`)
	b, ok := n.(*Boolean)
	if !ok || b.Op != And {
		t.Fatalf("got %T %v, want And boolean", n, n)
	}
	if len(b.Children) != 2 {
		t.Fatalf("got %d children, want 2", len(b.Children))
	}
	r := b.Children[0].(*Relation)
	if r.Attribute != "executable" || r.Op != OpEq || r.Values[0].Literal != "/bin/date" {
		t.Errorf("first relation = %+v", r)
	}
}

func TestParseRelationOperators(t *testing.T) {
	tests := []struct {
		in   string
		attr string
		op   Op
		val  string
	}{
		{`(count=4)`, "count", OpEq, "4"},
		{`(count!=4)`, "count", OpNeq, "4"},
		{`(count<4)`, "count", OpLt, "4"},
		{`(count<=4)`, "count", OpLe, "4"},
		{`(count>4)`, "count", OpGt, "4"},
		{`(count>=4)`, "count", OpGe, "4"},
		{`(count = 4)`, "count", OpEq, "4"},
		{`(COUNT=4)`, "count", OpEq, "4"},
	}
	for _, tt := range tests {
		n := mustParse(t, tt.in)
		r, ok := n.(*Relation)
		if !ok {
			t.Fatalf("%q: got %T, want *Relation", tt.in, n)
		}
		if r.Attribute != tt.attr || r.Op != tt.op || r.Values[0].Literal != tt.val {
			t.Errorf("%q: got %+v", tt.in, r)
		}
	}
}

func TestParseQuotedValues(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{`(directory="/sandbox/my test")`, "/sandbox/my test"},
		{`(directory='/tmp/a b')`, "/tmp/a b"},
		{`(label="say ""hi""")`, `say "hi"`},
		{`(label="")`, ""},
	}
	for _, tt := range tests {
		r := mustParse(t, tt.in).(*Relation)
		if got := r.Values[0].Literal; got != tt.want {
			t.Errorf("%q: got %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestParseMultiValue(t *testing.T) {
	r := mustParse(t, `(arguments=a b "c d")`).(*Relation)
	if len(r.Values) != 3 {
		t.Fatalf("got %d values, want 3", len(r.Values))
	}
	want := []string{"a", "b", "c d"}
	for i, w := range want {
		if r.Values[i].Literal != w {
			t.Errorf("value[%d] = %q, want %q", i, r.Values[i].Literal, w)
		}
	}
}

func TestParseVariables(t *testing.T) {
	r := mustParse(t, `(stdout=$(HOME))`).(*Relation)
	if !r.Values[0].IsVariable() || r.Values[0].Variable != "HOME" {
		t.Fatalf("got %+v, want variable HOME", r.Values[0])
	}
	got := r.Values[0].Resolve(map[string]string{"HOME": "/home/kate"})
	if got != "/home/kate" {
		t.Errorf("Resolve = %q", got)
	}
	if got := r.Values[0].Resolve(nil); got != "" {
		t.Errorf("Resolve(nil) = %q, want empty", got)
	}
}

func TestParseNested(t *testing.T) {
	n := mustParse(t, `&(executable=a)(|(count=1)(count=2))`)
	b := n.(*Boolean)
	if len(b.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(b.Children))
	}
	inner, ok := b.Children[1].(*Boolean)
	if !ok || inner.Op != Or {
		t.Fatalf("inner = %#v, want Or boolean", b.Children[1])
	}
}

func TestParseMultiRequest(t *testing.T) {
	n := mustParse(t, `+(&(executable=a))(&(executable=b))`)
	parts := MultiRequests(n)
	if len(parts) != 2 {
		t.Fatalf("MultiRequests = %d parts, want 2", len(parts))
	}
	if MultiRequests(parts[0])[0] != parts[0] {
		t.Errorf("MultiRequests on non-multi should return the node itself")
	}
}

func TestParseImplicitConjunction(t *testing.T) {
	n := mustParse(t, `(executable=a)(count=2)`)
	b, ok := n.(*Boolean)
	if !ok || b.Op != And || len(b.Children) != 2 {
		t.Fatalf("got %#v, want implicit And of 2", n)
	}
	// A single bare relation parses to the relation itself.
	if _, ok := mustParse(t, `(executable=a)`).(*Relation); !ok {
		t.Errorf("single relation should not be wrapped")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`&`,
		`(`,
		`()`,
		`(count)`,
		`(count=)`,
		`(count!4)`,
		`(count=4`,
		`(count=4))`,
		`(="x")`,
		`(count="unterminated)`,
		`(stdout=$HOME)`,
		`(stdout=$()`,
		`(stdout=$())`,
		`garbage`,
		`&(a=1)trailing`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q): error %v is not a *SyntaxError", in, err)
			}
		}
	}
}

func TestSpecBasics(t *testing.T) {
	s, err := ParseSpec(`&(executable=test1)(directory=/sandbox/test)(count=3)(jobtag=ADS)`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has("executable") || s.Get("executable") != "test1" {
		t.Errorf("executable = %q", s.Get("executable"))
	}
	if s.Has("queue") {
		t.Errorf("queue unexpectedly present")
	}
	if got := s.Get("queue"); got != "" {
		t.Errorf("Get(absent) = %q, want empty", got)
	}
	wantAttrs := []string{"count", "directory", "executable", "jobtag"}
	got := s.Attributes()
	if len(got) != len(wantAttrs) {
		t.Fatalf("Attributes = %v", got)
	}
	for i := range wantAttrs {
		if got[i] != wantAttrs[i] {
			t.Errorf("Attributes[%d] = %q, want %q", i, got[i], wantAttrs[i])
		}
	}
}

func TestSpecRejectsNonConjunctive(t *testing.T) {
	for _, in := range []string{
		`|(executable=a)(executable=b)`,
		`+(&(executable=a))(&(executable=b))`,
		`&(count<4)`,
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q): expected error", in)
		}
	}
}

func TestSpecCloneIsolation(t *testing.T) {
	s := NewSpec().Set("executable", "a").Set("arguments", "x", "y")
	c := s.Clone()
	c.Set("executable", "b")
	c.Add("arguments", "z")
	if s.Get("executable") != "a" {
		t.Errorf("clone mutated original executable")
	}
	if len(s.Values("arguments")) != 2 {
		t.Errorf("clone mutated original arguments")
	}
	if !s.Equal(s.Clone()) {
		t.Errorf("spec not Equal to its clone")
	}
	if s.Equal(c) {
		t.Errorf("distinct specs reported Equal")
	}
}

func TestSpecValuesCopies(t *testing.T) {
	s := NewSpec().Set("arguments", "x", "y")
	vs := s.Values("arguments")
	vs[0] = "mutated"
	if s.Get("arguments") != "x" {
		t.Errorf("Values leaked internal slice")
	}
}

func TestSpecUnparseRoundTrip(t *testing.T) {
	in := `&(arguments=a "b c")(count=4)(executable=/bin/date)`
	s, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Unparse()
	s2, err := ParseSpec(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if !s.Equal(s2) {
		t.Errorf("round trip changed spec: %q vs %q", s, s2)
	}
}

func TestSpecDelete(t *testing.T) {
	s := NewSpec().Set("executable", "a").Set("count", "2")
	s.Delete("COUNT")
	if s.Has("count") {
		t.Errorf("Delete did not remove attribute")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		lhs  string
		op   Op
		rhs  string
		want bool
	}{
		{"3", OpLt, "4", true},
		{"10", OpLt, "4", false},
		{"10", OpGt, "4", true},  // numeric, not lexicographic
		{"10", OpLt, "9", false}, // numeric, lexicographic would say true
		{"4", OpLe, "4", true},
		{"4", OpGe, "4", true},
		{"4", OpEq, "4.0", true}, // numeric equality
		{"a", OpLt, "b", true},   // string fallback
		{"abc", OpEq, "abc", true},
		{"abc", OpNeq, "abd", true},
		{"3", OpNeq, "3", false},
	}
	for _, tt := range tests {
		if got := Compare(tt.lhs, tt.op, tt.rhs); got != tt.want {
			t.Errorf("Compare(%q %s %q) = %v, want %v", tt.lhs, tt.op, tt.rhs, got, tt.want)
		}
	}
}

func TestValidate(t *testing.T) {
	ok, err := ParseSpec(`&(executable=test1)(count=4)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ok); err != nil {
		t.Errorf("Validate(ok) = %v", err)
	}
	missing := NewSpec().Set("count", "4")
	if err := Validate(missing); err == nil {
		t.Errorf("Validate should require executable")
	}
	bad := NewSpec().Set("executable", "a").Set("count", "many")
	if err := Validate(bad); err == nil {
		t.Errorf("Validate should reject non-integer count")
	}
	neg := NewSpec().Set("executable", "a").Set("maxtime", "-1")
	if err := Validate(neg); err == nil {
		t.Errorf("Validate should reject negative maxtime")
	}
}

func TestUnparseQuoting(t *testing.T) {
	r := &Relation{Attribute: "directory", Op: OpEq, Values: []Value{Lit("/a b/c")}}
	got := r.Unparse()
	if got != `(directory="/a b/c")` {
		t.Errorf("Unparse = %q", got)
	}
	n, err := Parse(got)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if n.(*Relation).Values[0].Literal != "/a b/c" {
		t.Errorf("round trip lost value")
	}
}

func TestBooleanUnparseNested(t *testing.T) {
	n := mustParse(t, `&(executable=a)(|(count=1)(count=2))`)
	out := n.Unparse()
	n2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if n2.Unparse() != out {
		t.Errorf("unparse not a fixed point: %q vs %q", out, n2.Unparse())
	}
}

// Property: any spec built from printable-literal attribute values
// survives an Unparse/ParseSpec round trip.
func TestQuickSpecRoundTrip(t *testing.T) {
	f := func(vals []string) bool {
		s := NewSpec().Set("executable", "x")
		for i, v := range vals {
			if strings.ContainsAny(v, "\x00") || !isPrintable(v) {
				continue
			}
			attr := "attr" + string(rune('a'+i%26))
			s.Add(attr, v)
		}
		s2, err := ParseSpec(s.Unparse())
		if err != nil {
			t.Logf("spec %q: %v", s.Unparse(), err)
			return false
		}
		return s.Equal(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func isPrintable(s string) bool {
	for _, r := range s {
		if r < 0x20 || r == 0x7f {
			return false
		}
	}
	return true
}

// Property: Compare is antisymmetric for strict orders on integers.
func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(a, b int16) bool {
		la, lb := itoa(int(a)), itoa(int(b))
		lt := Compare(la, OpLt, lb)
		gt := Compare(la, OpGt, lb)
		eq := Compare(la, OpEq, lb)
		// Exactly one of <, >, = holds.
		n := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
