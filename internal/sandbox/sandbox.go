// Package sandbox implements the continuous, fine-grain enforcement
// alternative discussed in §6.1 of the paper: "a sandbox is an
// environment that imposes restrictions on resource usage ... having the
// resource operating system act as the policy evaluation and enforcement
// modules", complementary to the gateway (admission-time) approach.
//
// A Monitor subscribes to the local job control system and polices each
// attached job against per-job limits while it runs, killing violators.
// This is what lets experiment E6 demonstrate the "gateway enforcement
// gap": a job admitted under policy may still over-consume at runtime;
// only continuous enforcement catches it.
package sandbox

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gridauth/internal/jobcontrol"
)

// Limits bound a sandboxed job's resource usage.
type Limits struct {
	// MaxCPUSeconds caps accumulated cpu time (0 = unlimited).
	MaxCPUSeconds float64
	// MaxMemoryMB caps resident memory (0 = unlimited).
	MaxMemoryMB int
	// MaxDiskMB caps disk consumption (0 = unlimited).
	MaxDiskMB int
	// MaxRuntime caps wall-clock runtime (0 = unlimited).
	MaxRuntime time.Duration
}

// Violation records a limit breach.
type Violation struct {
	JobID    string
	Time     time.Time
	Resource string
	Used     float64
	Limit    float64
}

// String formats the violation.
func (v Violation) String() string {
	return fmt.Sprintf("job %s exceeded %s: used %.1f, limit %.1f", v.JobID, v.Resource, v.Used, v.Limit)
}

// Monitor polices sandboxed jobs on a cluster.
type Monitor struct {
	cluster *jobcontrol.Cluster

	mu         sync.Mutex
	limits     map[string]Limits
	violations []Violation
	// Kill controls whether violating jobs are terminated (true) or
	// merely reported (audit mode).
	kill bool
}

// NewMonitor attaches a sandbox monitor to a cluster. With kill=true,
// violating jobs are canceled; otherwise violations are only recorded.
func NewMonitor(cluster *jobcontrol.Cluster, kill bool) *Monitor {
	m := &Monitor{
		cluster: cluster,
		limits:  make(map[string]Limits),
		kill:    kill,
	}
	cluster.Subscribe(m.onEvent)
	return m
}

// Attach sandboxes a job under the given limits.
func (m *Monitor) Attach(jobID string, l Limits) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.limits[jobID] = l
}

// Detach removes a job from sandbox supervision.
func (m *Monitor) Detach(jobID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.limits, jobID)
}

// Violations returns all recorded violations in order.
func (m *Monitor) Violations() []Violation {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]Violation(nil), m.violations...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// onEvent reacts to scheduler lifecycle events; terminal events drop the
// job from supervision.
func (m *Monitor) onEvent(e jobcontrol.Event) {
	switch e.Kind {
	case jobcontrol.EventCompleted, jobcontrol.EventCanceled, jobcontrol.EventFailed:
		m.Detach(e.JobID)
	default:
	}
}

// Poll inspects every sandboxed job's current usage and enforces limits.
// Call it after each clock advance (the simulated analogue of the
// periodic checks a user-level sandbox performs).
func (m *Monitor) Poll() []Violation {
	m.mu.Lock()
	ids := make([]string, 0, len(m.limits))
	for id := range m.limits {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	m.mu.Unlock()

	var found []Violation
	for _, id := range ids {
		job, err := m.cluster.Lookup(id)
		if err != nil {
			m.Detach(id)
			continue
		}
		m.mu.Lock()
		l, ok := m.limits[id]
		m.mu.Unlock()
		if !ok {
			continue
		}
		v, bad := check(job, l, m.cluster.Now())
		if !bad {
			continue
		}
		found = append(found, v)
		m.mu.Lock()
		m.violations = append(m.violations, v)
		m.mu.Unlock()
		if m.kill && !job.State.Terminal() {
			// Best effort: the job may have finished between lookup and
			// cancel.
			_ = m.cluster.Cancel(id, "sandbox: "+v.Resource+" limit exceeded")
		}
		m.Detach(id)
	}
	return found
}

func check(job *jobcontrol.Job, l Limits, now time.Time) (Violation, bool) {
	if l.MaxCPUSeconds > 0 && job.CPUSeconds > l.MaxCPUSeconds {
		return Violation{JobID: job.ID, Time: now, Resource: "cpu-seconds", Used: job.CPUSeconds, Limit: l.MaxCPUSeconds}, true
	}
	if l.MaxMemoryMB > 0 && job.Spec.MemoryMB > l.MaxMemoryMB {
		return Violation{JobID: job.ID, Time: now, Resource: "memory-mb", Used: float64(job.Spec.MemoryMB), Limit: float64(l.MaxMemoryMB)}, true
	}
	if l.MaxDiskMB > 0 && job.Spec.DiskMB > l.MaxDiskMB {
		return Violation{JobID: job.ID, Time: now, Resource: "disk-mb", Used: float64(job.Spec.DiskMB), Limit: float64(l.MaxDiskMB)}, true
	}
	if l.MaxRuntime > 0 && job.State == jobcontrol.StateRunning && !job.StartedAt.IsZero() {
		run := now.Sub(job.StartedAt)
		if run > l.MaxRuntime {
			return Violation{JobID: job.ID, Time: now, Resource: "runtime-seconds", Used: run.Seconds(), Limit: l.MaxRuntime.Seconds()}, true
		}
	}
	return Violation{}, false
}
