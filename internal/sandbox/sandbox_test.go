package sandbox

import (
	"strings"
	"testing"
	"time"

	"gridauth/internal/jobcontrol"
)

func TestCPULimitKillsJob(t *testing.T) {
	c := jobcontrol.NewCluster(4)
	m := NewMonitor(c, true)
	j, err := c.Submit(jobcontrol.JobSpec{Executable: "hog", Count: 2, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Policy admitted the job, but its runtime consumption is capped at
	// 600 cpu-seconds: 2 cpus hit that after 5 minutes.
	m.Attach(j.ID, Limits{MaxCPUSeconds: 600})
	c.Advance(4 * time.Minute)
	if vs := m.Poll(); len(vs) != 0 {
		t.Fatalf("early violation: %v", vs)
	}
	c.Advance(2 * time.Minute)
	vs := m.Poll()
	if len(vs) != 1 || vs[0].Resource != "cpu-seconds" {
		t.Fatalf("violations = %v", vs)
	}
	got, _ := c.Lookup(j.ID)
	if got.State != jobcontrol.StateCanceled {
		t.Errorf("state = %s, want canceled", got.State)
	}
	if !strings.Contains(got.Detail, "sandbox") {
		t.Errorf("detail = %q", got.Detail)
	}
}

func TestAuditModeReportsWithoutKilling(t *testing.T) {
	c := jobcontrol.NewCluster(1)
	m := NewMonitor(c, false)
	j, err := c.Submit(jobcontrol.JobSpec{Executable: "hog", Duration: time.Hour, MemoryMB: 4096})
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(j.ID, Limits{MaxMemoryMB: 1024})
	c.Advance(time.Minute)
	vs := m.Poll()
	if len(vs) != 1 || vs[0].Resource != "memory-mb" {
		t.Fatalf("violations = %v", vs)
	}
	got, _ := c.Lookup(j.ID)
	if got.State != jobcontrol.StateRunning {
		t.Errorf("audit mode killed the job: %s", got.State)
	}
	if len(m.Violations()) != 1 {
		t.Errorf("violation not recorded")
	}
}

func TestDiskAndRuntimeLimits(t *testing.T) {
	c := jobcontrol.NewCluster(2)
	m := NewMonitor(c, true)
	disk, err := c.Submit(jobcontrol.JobSpec{Executable: "d", Duration: time.Hour, DiskMB: 900})
	if err != nil {
		t.Fatal(err)
	}
	long, err := c.Submit(jobcontrol.JobSpec{Executable: "l", Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(disk.ID, Limits{MaxDiskMB: 500})
	m.Attach(long.ID, Limits{MaxRuntime: 10 * time.Minute})
	c.Advance(time.Minute)
	vs := m.Poll()
	if len(vs) != 1 || vs[0].JobID != disk.ID || vs[0].Resource != "disk-mb" {
		t.Fatalf("violations after 1m = %v", vs)
	}
	c.Advance(10 * time.Minute)
	vs = m.Poll()
	if len(vs) != 1 || vs[0].JobID != long.ID || vs[0].Resource != "runtime-seconds" {
		t.Fatalf("violations after 11m = %v", vs)
	}
	if v := vs[0].String(); !strings.Contains(v, "runtime") {
		t.Errorf("String = %q", v)
	}
}

func TestWithinLimitsJobCompletes(t *testing.T) {
	c := jobcontrol.NewCluster(1)
	m := NewMonitor(c, true)
	j, err := c.Submit(jobcontrol.JobSpec{Executable: "ok", Duration: 5 * time.Minute, MemoryMB: 100, DiskMB: 10})
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(j.ID, Limits{MaxCPUSeconds: 600, MaxMemoryMB: 1024, MaxDiskMB: 500, MaxRuntime: time.Hour})
	for i := 0; i < 6; i++ {
		c.Advance(time.Minute)
		if vs := m.Poll(); len(vs) != 0 {
			t.Fatalf("unexpected violation: %v", vs)
		}
	}
	got, _ := c.Lookup(j.ID)
	if got.State != jobcontrol.StateCompleted {
		t.Errorf("state = %s", got.State)
	}
}

func TestTerminalJobDetaches(t *testing.T) {
	c := jobcontrol.NewCluster(1)
	m := NewMonitor(c, true)
	j, err := c.Submit(jobcontrol.JobSpec{Executable: "x", Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(j.ID, Limits{MaxCPUSeconds: 1})
	c.Advance(2 * time.Minute) // completes before the poll
	if vs := m.Poll(); len(vs) != 0 {
		// Completed jobs are no longer supervised; the usage already
		// happened and the job is gone.
		t.Logf("post-completion violations tolerated but unexpected: %v", vs)
	}
	m.Detach(j.ID) // idempotent
}

func TestDetachStopsEnforcement(t *testing.T) {
	c := jobcontrol.NewCluster(1)
	m := NewMonitor(c, true)
	j, err := c.Submit(jobcontrol.JobSpec{Executable: "x", Duration: time.Hour, MemoryMB: 9999})
	if err != nil {
		t.Fatal(err)
	}
	m.Attach(j.ID, Limits{MaxMemoryMB: 1})
	m.Detach(j.ID)
	c.Advance(time.Minute)
	if vs := m.Poll(); len(vs) != 0 {
		t.Errorf("detached job policed: %v", vs)
	}
}
