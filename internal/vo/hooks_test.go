package vo

import "testing"

// TestOnChangeFires verifies every VO policy mutation notifies
// subscribers (the registry wires this to decision-cache invalidation,
// so a membership change must be visible on the next request).
func TestOnChangeFires(t *testing.T) {
	v := newTestVO(t)
	fired := 0
	v.OnChange(func() { fired++ })
	if err := v.AddMember(&Member{Identity: "/O=Grid/CN=New Member", Roles: []string{RoleDeveloper}}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("AddMember: hook fired %d times, want 1", fired)
	}
	v.RemoveMember("/O=Grid/CN=New Member")
	if fired != 2 {
		t.Fatalf("RemoveMember: hook fired %d times, want 2", fired)
	}
	if err := v.DefineJobtag(Jobtag{Name: "EXTRA", ManagerRole: RoleAdmin}); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("DefineJobtag: hook fired %d times, want 3", fired)
	}
	// Failed mutations change no policy and must not notify.
	if err := v.DefineJobtag(Jobtag{Name: "EXTRA"}); err == nil {
		t.Fatal("duplicate jobtag accepted")
	}
	if err := v.AddMember(&Member{Identity: "bad"}); err == nil {
		t.Fatal("invalid identity accepted")
	}
	if fired != 3 {
		t.Errorf("failed mutations fired hooks (fired = %d)", fired)
	}
}
