// Package vo models a Virtual Organization: its membership, roles,
// jobtag registry, credential issuance and policy administration.
//
// The paper's use case (§2) structures a VO into two primary member
// classes — a development group that runs many kinds of processes but may
// only consume small amounts of resources, and an analysis group that
// runs sanctioned application services with large resource allocations —
// plus administrators entitled to manage any job carrying a VO jobtag.
// This package provides the bookkeeping for that structure and a policy
// builder that turns it into the paper's policy language.
package vo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
)

// Canonical VO roles from the use case.
const (
	// RoleDeveloper develops, installs and debugs the VO's application
	// services.
	RoleDeveloper = "developer"
	// RoleAnalyst performs analysis using the application services.
	RoleAnalyst = "analyst"
	// RoleAdmin may manage any job in the VO's jobtag groups.
	RoleAdmin = "admin"
)

// Member is a VO participant.
type Member struct {
	Identity gsi.DN
	Roles    []string
	Groups   []string
	// Jobtags the member may submit jobs under.
	Jobtags []string
}

// HasRole reports whether the member holds the role.
func (m *Member) HasRole(role string) bool {
	for _, r := range m.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// Jobtag describes a VO job management group (§5.1: "a jobtag indicates
// the job membership in a group of jobs for which policy can be
// defined").
type Jobtag struct {
	Name        string
	Description string
	// ManagerRole is the role whose holders may manage jobs in the group.
	ManagerRole string
}

// VO is a virtual organization.
type VO struct {
	name string
	cred *gsi.Credential

	mu      sync.RWMutex
	members map[gsi.DN]*Member
	jobtags map[string]*Jobtag
	ttl     time.Duration
	now     func() time.Time
	hooks   []func()
}

// OnChange subscribes fn to membership and jobtag mutations. Resources
// caching authorization decisions that depend on this VO (the
// membership gate, policies built from it) wire fn to their registry's
// InvalidateCaches so an expelled member's cached permits die with the
// membership.
func (v *VO) OnChange(fn func()) {
	if fn == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.hooks = append(v.hooks, fn)
}

// notifyChange runs the hooks outside the lock (hooks may call back
// into the VO).
func (v *VO) notifyChange() {
	v.mu.RLock()
	hooks := append([]func(){}, v.hooks...)
	v.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
}

// Option configures a VO.
type Option func(*VO)

// WithAssertionTTL sets the lifetime of issued assertions.
func WithAssertionTTL(ttl time.Duration) Option {
	return func(v *VO) { v.ttl = ttl }
}

// WithClock sets the VO's time source.
func WithClock(now func() time.Time) Option {
	return func(v *VO) { v.now = now }
}

// New creates a VO. cred is the VO's signing credential (issued by a CA
// the resources trust).
func New(name string, cred *gsi.Credential, opts ...Option) *VO {
	v := &VO{
		name:    name,
		cred:    cred,
		members: make(map[gsi.DN]*Member),
		jobtags: make(map[string]*Jobtag),
		ttl:     8 * time.Hour,
		now:     time.Now,
	}
	for _, o := range opts {
		o(v)
	}
	return v
}

// Name returns the VO name.
func (v *VO) Name() string { return v.name }

// Certificate returns the VO's certificate, used by resources to verify
// assertions.
func (v *VO) Certificate() *gsi.Certificate { return v.cred.Leaf() }

// AddMember enrolls (or updates) a member.
func (v *VO) AddMember(m *Member) error {
	if !m.Identity.Valid() {
		return fmt.Errorf("vo: invalid member identity %q", m.Identity)
	}
	cp := *m
	cp.Roles = append([]string(nil), m.Roles...)
	cp.Groups = append([]string(nil), m.Groups...)
	cp.Jobtags = append([]string(nil), m.Jobtags...)
	v.mu.Lock()
	v.members[m.Identity] = &cp
	v.mu.Unlock()
	v.notifyChange()
	return nil
}

// RemoveMember expels a member.
func (v *VO) RemoveMember(id gsi.DN) {
	v.mu.Lock()
	delete(v.members, id)
	v.mu.Unlock()
	v.notifyChange()
}

// Member returns the member record for id.
func (v *VO) Member(id gsi.DN) (*Member, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	m, ok := v.members[id]
	if !ok {
		return nil, false
	}
	cp := *m
	return &cp, true
}

// Members returns all members sorted by identity.
func (v *VO) Members() []*Member {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]*Member, 0, len(v.members))
	for _, m := range v.members {
		cp := *m
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Identity < out[j].Identity })
	return out
}

// DefineJobtag registers a job management group. Jobtags are "statically
// defined by a policy administrator" in the prototype.
func (v *VO) DefineJobtag(tag Jobtag) error {
	if tag.Name == "" {
		return fmt.Errorf("vo: jobtag needs a name")
	}
	v.mu.Lock()
	if _, exists := v.jobtags[tag.Name]; exists {
		v.mu.Unlock()
		return fmt.Errorf("vo: jobtag %q already defined", tag.Name)
	}
	cp := tag
	v.jobtags[tag.Name] = &cp
	v.mu.Unlock()
	v.notifyChange()
	return nil
}

// JobtagDef returns the definition of a jobtag.
func (v *VO) JobtagDef(name string) (*Jobtag, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	t, ok := v.jobtags[name]
	if !ok {
		return nil, false
	}
	cp := *t
	return &cp, true
}

// Jobtags returns all registered jobtags sorted by name.
func (v *VO) Jobtags() []*Jobtag {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]*Jobtag, 0, len(v.jobtags))
	for _, t := range v.jobtags {
		cp := *t
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// IssueAssertion signs a VO attribute assertion for a member, the
// credential the user presents alongside their personal Grid credential
// (interaction model step 1).
func (v *VO) IssueAssertion(id gsi.DN) (*gsi.Assertion, error) {
	v.mu.RLock()
	m, ok := v.members[id]
	v.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("vo: %s is not a member of %s", id, v.name)
	}
	now := v.now()
	a := &gsi.Assertion{
		VO:        v.name,
		Holder:    id,
		Groups:    append([]string(nil), m.Groups...),
		Roles:     append([]string(nil), m.Roles...),
		Jobtags:   append([]string(nil), m.Jobtags...),
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(v.ttl),
	}
	if err := gsi.SignAssertion(a, v.cred); err != nil {
		return nil, fmt.Errorf("sign assertion: %w", err)
	}
	return a, nil
}

// MembershipPDP returns a PDP that verifies the requester presents a
// valid assertion from this VO — the "VO credential" gate. Jobs under a
// jobtag additionally require the assertion to entitle the holder to that
// jobtag (so a user cannot place jobs into management groups the VO never
// gave them). The gate is a pure restriction: on success it ABSTAINS
// (NotApplicable) rather than permits, so membership alone never
// authorizes anything — a grant must come from policy.
func (v *VO) MembershipPDP() core.PDP {
	name := "vo-membership:" + v.name
	return core.PDPFunc{ID: name, Fn: func(req *core.Request) core.Decision {
		var found *gsi.Assertion
		for _, a := range req.Assertions {
			if a.VO == v.name && a.Holder == req.Subject {
				found = a
				break
			}
		}
		if found == nil {
			return core.DenyDecision(name, fmt.Sprintf("no %s assertion presented by %s", v.name, req.Subject))
		}
		if req.Action == policy.ActionStart && req.Spec != nil && req.Spec.Has(policy.AttrJobtag) {
			tag := req.Spec.Get(policy.AttrJobtag)
			if _, defined := v.JobtagDef(tag); !defined {
				return core.DenyDecision(name, fmt.Sprintf("jobtag %q is not defined by VO %s", tag, v.name))
			}
			if !found.AllowsJobtag(tag) {
				return core.DenyDecision(name, fmt.Sprintf("assertion does not entitle %s to jobtag %q", req.Subject, tag))
			}
		}
		return core.AbstainDecision(name, "valid VO assertion (gate passed)")
	}}
}

// PolicyBuilder assembles a VO policy from role templates, producing text
// in the paper's policy language.
type PolicyBuilder struct {
	vo *VO
	// DeveloperExecutables are the processes the development group may
	// run (compilers, debuggers, application services under test).
	DeveloperExecutables []string
	// DeveloperMaxCount caps the processors a developer job may use.
	DeveloperMaxCount int
	// DeveloperMaxTime caps developer job wall time (minutes).
	DeveloperMaxTime int
	// AnalystExecutables are the sanctioned application services.
	AnalystExecutables []string
	// ServiceDirectory is where sanctioned executables live.
	ServiceDirectory string
}

// NewPolicyBuilder returns a builder with the use case's defaults.
func NewPolicyBuilder(v *VO) *PolicyBuilder {
	return &PolicyBuilder{
		vo:                   v,
		DeveloperExecutables: []string{"gcc", "gdb", "make"},
		DeveloperMaxCount:    2,
		DeveloperMaxTime:     30,
		AnalystExecutables:   []string{"TRANSP"},
		ServiceDirectory:     "/sandbox/services",
	}
}

// Build renders the VO policy. Every start must carry a jobtag (so
// VO-wide management policy can be written against it); developers get
// tight resource limits; analysts get the sanctioned services; admins may
// cancel/signal/inspect every job in the jobtag groups their role
// manages.
func (b *PolicyBuilder) Build() (*policy.Policy, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Policy generated for VO %s\n", b.vo.Name())

	// VO-wide requirement: job invocations must join a management group.
	sb.WriteString("/O=Grid: &(action = start)(jobtag != NULL)\n")

	for _, m := range b.vo.Members() {
		var sets []string
		tags := strings.Join(m.Jobtags, " ")
		if tags == "" {
			tags = "NULL" // member without jobtags cannot satisfy the requirement
		}
		if m.HasRole(RoleDeveloper) {
			sets = append(sets, fmt.Sprintf(
				"&(action = start)(executable = %s)(jobtag = %s)(count<=%d)(maxtime<=%d)",
				strings.Join(b.DeveloperExecutables, " "), tags,
				b.DeveloperMaxCount, b.DeveloperMaxTime))
		}
		if m.HasRole(RoleAnalyst) {
			sets = append(sets, fmt.Sprintf(
				"&(action = start)(executable = %s)(directory = %s)(jobtag = %s)",
				strings.Join(b.AnalystExecutables, " "), b.ServiceDirectory, tags))
		}
		if m.HasRole(RoleAdmin) {
			managed := b.managedTags(m)
			if len(managed) > 0 {
				sets = append(sets, fmt.Sprintf(
					"&(action = cancel information signal)(jobtag = %s)",
					strings.Join(managed, " ")))
			}
		}
		// Everyone may manage their own jobs (the GT2 default, now
		// expressed in policy).
		sets = append(sets, "&(action = cancel information signal)(jobowner = self)")
		fmt.Fprintf(&sb, "%s: %s\n", m.Identity, strings.Join(sets, " "))
	}
	return policy.ParseString(sb.String(), "VO:"+b.vo.Name())
}

func (b *PolicyBuilder) managedTags(m *Member) []string {
	var out []string
	for _, t := range b.vo.Jobtags() {
		if t.ManagerRole != "" && m.HasRole(t.ManagerRole) {
			out = append(out, t.Name)
		}
	}
	return out
}
