package vo

import (
	"strings"
	"testing"
	"time"

	"gridauth/internal/core"
	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

const (
	devDN     = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Dev One")
	analystDN = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Ana Lyst")
	adminDN   = gsi.DN("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")
)

func newTestVO(t *testing.T) *VO {
	t.Helper()
	ca, err := gsi.NewCA("/O=Grid/CN=Test CA")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.Issue("/O=Grid/CN=NFC VO", gsi.KindService)
	if err != nil {
		t.Fatal(err)
	}
	v := New("NFC", cred)
	if err := v.DefineJobtag(Jobtag{Name: "NFC", Description: "fusion runs", ManagerRole: RoleAdmin}); err != nil {
		t.Fatal(err)
	}
	if err := v.DefineJobtag(Jobtag{Name: "ADS", Description: "app dev + support", ManagerRole: RoleAdmin}); err != nil {
		t.Fatal(err)
	}
	members := []*Member{
		{Identity: devDN, Roles: []string{RoleDeveloper}, Jobtags: []string{"ADS"}},
		{Identity: analystDN, Roles: []string{RoleAnalyst}, Jobtags: []string{"NFC"}},
		{Identity: adminDN, Roles: []string{RoleAnalyst, RoleAdmin}, Jobtags: []string{"NFC", "ADS"}},
	}
	for _, m := range members {
		if err := v.AddMember(m); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func TestMembership(t *testing.T) {
	v := newTestVO(t)
	m, ok := v.Member(devDN)
	if !ok || !m.HasRole(RoleDeveloper) || m.HasRole(RoleAdmin) {
		t.Errorf("member lookup wrong: %+v ok=%v", m, ok)
	}
	if len(v.Members()) != 3 {
		t.Errorf("Members = %d", len(v.Members()))
	}
	v.RemoveMember(devDN)
	if _, ok := v.Member(devDN); ok {
		t.Errorf("RemoveMember ineffective")
	}
	if err := v.AddMember(&Member{Identity: "bad"}); err == nil {
		t.Errorf("invalid identity accepted")
	}
}

func TestJobtagRegistry(t *testing.T) {
	v := newTestVO(t)
	if err := v.DefineJobtag(Jobtag{Name: "NFC"}); err == nil {
		t.Errorf("duplicate jobtag accepted")
	}
	if err := v.DefineJobtag(Jobtag{}); err == nil {
		t.Errorf("anonymous jobtag accepted")
	}
	if got := len(v.Jobtags()); got != 2 {
		t.Errorf("Jobtags = %d", got)
	}
	tag, ok := v.JobtagDef("NFC")
	if !ok || tag.ManagerRole != RoleAdmin {
		t.Errorf("JobtagDef = %+v, %v", tag, ok)
	}
}

func TestIssueAssertion(t *testing.T) {
	v := newTestVO(t)
	a, err := v.IssueAssertion(adminDN)
	if err != nil {
		t.Fatal(err)
	}
	if err := gsi.VerifyAssertion(a, v.Certificate(), adminDN, time.Now()); err != nil {
		t.Fatal(err)
	}
	if !a.HasRole(RoleAdmin) || !a.AllowsJobtag("NFC") || !a.AllowsJobtag("ADS") {
		t.Errorf("assertion contents wrong: %+v", a)
	}
	if _, err := v.IssueAssertion("/O=Grid/CN=Stranger"); err == nil {
		t.Errorf("assertion issued to non-member")
	}
}

func TestMembershipPDP(t *testing.T) {
	v := newTestVO(t)
	pdp := v.MembershipPDP()
	a, err := v.IssueAssertion(analystDN)
	if err != nil {
		t.Fatal(err)
	}
	start := func(tag string, asserts ...*gsi.Assertion) *core.Request {
		spec := rsl.NewSpec().Set("executable", "TRANSP")
		if tag != "" {
			spec.Set("jobtag", tag)
		}
		return &core.Request{Subject: analystDN, Action: policy.ActionStart, Spec: spec, Assertions: asserts}
	}
	if d := pdp.Authorize(start("NFC", a)); d.Effect != core.NotApplicable {
		t.Errorf("gate should abstain on success, got %v: %s", d.Effect, d.Reason)
	}
	if d := pdp.Authorize(start("NFC")); d.Effect != core.Deny {
		t.Errorf("missing assertion permitted")
	}
	if d := pdp.Authorize(start("ADS", a)); d.Effect != core.Deny {
		t.Errorf("unentitled jobtag permitted")
	}
	if d := pdp.Authorize(start("GHOST", a)); d.Effect != core.Deny {
		t.Errorf("undefined jobtag permitted")
	}
	// Management request: membership suffices for the gate (jobtag
	// entitlement is a submission-side rule; management rights come from
	// policy), so the gate abstains.
	mgmt := &core.Request{Subject: analystDN, Action: policy.ActionCancel, JobOwner: analystDN, Assertions: []*gsi.Assertion{a}}
	if d := pdp.Authorize(mgmt); d.Effect != core.NotApplicable {
		t.Errorf("management by member should pass the gate, got %v: %s", d.Effect, d.Reason)
	}
	// A lone gate never authorizes: combined with nothing granting, the
	// request is denied.
	combined := core.NewCombined(core.RequireAllPermit, pdp)
	if d := combined.Authorize(start("NFC", a)); d.Effect != core.Deny {
		t.Errorf("gate alone authorized a request: %v", d.Effect)
	}
}

func TestPolicyBuilder(t *testing.T) {
	v := newTestVO(t)
	b := NewPolicyBuilder(v)
	b.AnalystExecutables = []string{"TRANSP", "EFIT"}
	b.ServiceDirectory = "/sandbox/services"
	pol, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Source != "VO:NFC" {
		t.Errorf("Source = %q", pol.Source)
	}

	eval := func(subject gsi.DN, action, rslText string, owner gsi.DN) bool {
		var spec *rsl.Spec
		if rslText != "" {
			s, err := rsl.ParseSpec(rslText)
			if err != nil {
				t.Fatal(err)
			}
			spec = s
		}
		return pol.Evaluate(&policy.Request{Subject: subject, Action: action, JobOwner: owner, Spec: spec}).Allowed
	}

	// Developers: dev tools only, small allocations.
	if !eval(devDN, policy.ActionStart, `&(executable=gcc)(jobtag=ADS)(count=2)(maxtime=10)`, "") {
		t.Errorf("developer compile denied")
	}
	if eval(devDN, policy.ActionStart, `&(executable=gcc)(jobtag=ADS)(count=16)`, "") {
		t.Errorf("developer large allocation allowed")
	}
	if eval(devDN, policy.ActionStart, `&(executable=TRANSP)(directory=/sandbox/services)(jobtag=ADS)`, "") {
		t.Errorf("developer may not run analysis services")
	}

	// Analysts: sanctioned services, any size.
	if !eval(analystDN, policy.ActionStart, `&(executable=TRANSP)(directory=/sandbox/services)(jobtag=NFC)(count=64)`, "") {
		t.Errorf("analyst service run denied")
	}
	if eval(analystDN, policy.ActionStart, `&(executable=bash)(directory=/sandbox/services)(jobtag=NFC)`, "") {
		t.Errorf("analyst arbitrary code allowed")
	}

	// Jobtag requirement applies to everyone.
	if eval(analystDN, policy.ActionStart, `&(executable=TRANSP)(directory=/sandbox/services)`, "") {
		t.Errorf("start without jobtag allowed")
	}

	// Admin may cancel jobs in managed groups; others may not.
	if !eval(adminDN, policy.ActionCancel, `&(executable=TRANSP)(jobtag=NFC)`, analystDN) {
		t.Errorf("admin cancel denied")
	}
	if eval(analystDN, policy.ActionCancel, `&(executable=gcc)(jobtag=ADS)`, devDN) {
		t.Errorf("analyst cancel of other's job allowed")
	}

	// Self-management works for everyone.
	if !eval(devDN, policy.ActionCancel, `&(executable=gcc)(jobtag=ADS)`, devDN) {
		t.Errorf("self cancel denied")
	}

	// The generated text is in the paper's language and round-trips.
	text := pol.Unparse()
	if !strings.Contains(text, "(jobtag!=NULL)") {
		t.Errorf("generated policy lacks jobtag requirement:\n%s", text)
	}
	if _, err := policy.ParseString(text, pol.Source); err != nil {
		t.Errorf("generated policy does not reparse: %v", err)
	}
}
