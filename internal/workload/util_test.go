package workload

import "gridauth/internal/rsl"

func parseSpec(text string) (*rsl.Spec, error) {
	return rsl.ParseSpec(text)
}
