// Package workload generates the synthetic users, policies, job
// descriptions and request streams that drive the examples, experiments
// and benchmarks. Every generator is seeded and deterministic.
//
// Two families are provided: the National Fusion Collaboratory scenario
// from §2 of the paper (developer and analysis groups, sanctioned
// application services, admin preemption) and parameterized synthetic
// sweeps for the scaling benchmarks (P1-P4 in DESIGN.md).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

// NFC scenario constants.
const (
	// OrgPrefix is the DN prefix shared by all NFC members.
	OrgPrefix = "/O=Grid/O=Globus/OU=mcs.anl.gov"
	// ServiceDir is where sanctioned services live.
	ServiceDir = "/sandbox/services"
)

// User is a generated grid user.
type User struct {
	DN   gsi.DN
	Role string // "developer", "analyst" or "admin"
}

// NFCUsers generates nDev developers, nAna analysts and nAdm admins with
// deterministic DNs.
func NFCUsers(nDev, nAna, nAdm int) []User {
	users := make([]User, 0, nDev+nAna+nAdm)
	for i := 0; i < nDev; i++ {
		users = append(users, User{
			DN:   gsi.DN(fmt.Sprintf("%s/CN=Developer %03d", OrgPrefix, i)),
			Role: "developer",
		})
	}
	for i := 0; i < nAna; i++ {
		users = append(users, User{
			DN:   gsi.DN(fmt.Sprintf("%s/CN=Analyst %03d", OrgPrefix, i)),
			Role: "analyst",
		})
	}
	for i := 0; i < nAdm; i++ {
		users = append(users, User{
			DN:   gsi.DN(fmt.Sprintf("%s/CN=Admin %03d", OrgPrefix, i)),
			Role: "admin",
		})
	}
	return users
}

// NFCPolicy renders the scenario policy for the given users: the VO-wide
// jobtag requirement, developer limits, analyst service grants,
// admin management rights over the NFC and ADS jobtag groups, and
// self-management for everyone.
func NFCPolicy(users []User) (*policy.Policy, error) {
	var sb strings.Builder
	sb.WriteString(OrgPrefix + ": &(action = start)(jobtag != NULL)\n")
	for _, u := range users {
		var sets []string
		switch u.Role {
		case "developer":
			sets = append(sets,
				"&(action = start)(executable = gcc gdb make test1 test2)(jobtag = ADS)(count<=2)(maxtime<=30)")
		case "analyst":
			sets = append(sets,
				fmt.Sprintf("&(action = start)(executable = TRANSP EFIT)(directory = %s)(jobtag = NFC)", ServiceDir))
		case "admin":
			sets = append(sets,
				fmt.Sprintf("&(action = start)(executable = TRANSP EFIT)(directory = %s)(jobtag = NFC)", ServiceDir),
				"&(action = cancel information signal)(jobtag = NFC ADS)")
		}
		sets = append(sets, "&(action = cancel information signal)(jobowner = self)")
		fmt.Fprintf(&sb, "%s: %s\n", u.DN, strings.Join(sets, " "))
	}
	return policy.ParseString(sb.String(), "VO:NFC")
}

// NFCLocalPolicy is the resource owner's policy in the scenario: no
// reserved queue, every request must name an executable, and a site-wide
// processor ceiling.
func NFCLocalPolicy() (*policy.Policy, error) {
	const text = `
/O=Grid: &(action = start)(queue != fast)
/O=Grid: &(action = start)(executable != NULL)(count<=64)
/O=Grid: &(action = cancel information signal)(executable != NULL)
`
	return policy.ParseString(text, "local")
}

// JobFor generates a role-appropriate job description. conforming=false
// produces a request that violates the role's policy in a random way.
func JobFor(u User, rng *rand.Rand, conforming bool) *rsl.Spec {
	spec := rsl.NewSpec()
	switch u.Role {
	case "developer":
		exes := []string{"gcc", "gdb", "make", "test1", "test2"}
		spec.Set("executable", exes[rng.Intn(len(exes))])
		spec.Set("jobtag", "ADS")
		spec.Set("count", itoa(1+rng.Intn(2)))
		spec.Set("maxtime", itoa(5+rng.Intn(25)))
	default: // analyst, admin
		exes := []string{"TRANSP", "EFIT"}
		spec.Set("executable", exes[rng.Intn(len(exes))])
		spec.Set("directory", ServiceDir)
		spec.Set("jobtag", "NFC")
		spec.Set("count", itoa(1+rng.Intn(32)))
	}
	if !conforming {
		switch rng.Intn(4) {
		case 0:
			spec.Set("executable", "arbitrary-binary")
		case 1:
			spec.Delete("jobtag")
		case 2:
			spec.Set("count", "999")
		case 3:
			spec.Set("queue", "fast")
		}
	}
	return spec
}

// Request is a generated authorization request with its expected policy
// subject.
type Request struct {
	Subject gsi.DN
	Action  string
	Spec    *rsl.Spec
	Owner   gsi.DN
}

// RequestStream generates n policy requests: a mix of starts (80%) and
// management actions (20%), with conformFraction of the starts
// policy-conforming.
func RequestStream(users []User, n int, seed int64, conformFraction float64) []Request {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		u := users[rng.Intn(len(users))]
		if rng.Float64() < 0.8 {
			conforming := rng.Float64() < conformFraction
			out = append(out, Request{
				Subject: u.DN,
				Action:  policy.ActionStart,
				Spec:    JobFor(u, rng, conforming),
			})
			continue
		}
		owner := users[rng.Intn(len(users))]
		actions := []string{policy.ActionCancel, policy.ActionInformation, policy.ActionSignal}
		out = append(out, Request{
			Subject: u.DN,
			Action:  actions[rng.Intn(len(actions))],
			Spec:    JobFor(owner, rng, true),
			Owner:   owner.DN,
		})
	}
	return out
}

// SyntheticPolicy builds a policy with nStatements statements, each
// holding setsPerStatement grant sets of clausesPerSet clauses, spread
// over the given users round-robin. It drives the P2 scaling sweeps.
func SyntheticPolicy(users []User, nStatements, setsPerStatement, clausesPerSet int) (*policy.Policy, error) {
	var sb strings.Builder
	for i := 0; i < nStatements; i++ {
		u := users[i%len(users)]
		var sets []string
		for s := 0; s < setsPerStatement; s++ {
			var clauses []string
			clauses = append(clauses, "(action = start)")
			clauses = append(clauses, fmt.Sprintf("(executable = exe%d-%d)", i, s))
			for c := 2; c < clausesPerSet; c++ {
				clauses = append(clauses, fmt.Sprintf("(attr%d = v%d)", c, c))
			}
			sets = append(sets, "&"+strings.Join(clauses, ""))
		}
		fmt.Fprintf(&sb, "%s: %s\n", u.DN, strings.Join(sets, " "))
	}
	return policy.ParseString(sb.String(), "synthetic")
}

// --- P12: compiled-engine scaling shapes (docs/PERFORMANCE.md) ---
//
// The P12 sweep drives policy.Compile at 1k-1M rules. At those sizes
// rendering and re-parsing policy text would dominate benchmark setup,
// so these generators build the statement structs directly; the result
// is exactly what policy.Parse would produce for the equivalent text.
//
// Every grant accepts the shared executable "app" alongside a
// per-statement distinct one, so one P12Spec/P12Request permits under
// any statement while the policy still carries n distinct interned
// symbols — the worst case for compile-time interning, the common case
// ("small spec, huge policy") for evaluation.

// P12OrgPrefix is the identity prefix shared by all P12 subjects; a
// wildcard requirement (queue != fast) is attached to it in every shape
// so each decision also exercises the requirement-merge path.
const P12OrgPrefix = "/O=Grid/OU=P12"

func p12Rel(attr string, op rsl.Op, vals ...string) *rsl.Relation {
	r := &rsl.Relation{Attribute: attr, Op: op}
	for _, v := range vals {
		r.Values = append(r.Values, rsl.Lit(v))
	}
	return r
}

func p12Grant(exe string) *policy.AssertionSet {
	return &policy.AssertionSet{Clauses: []*rsl.Relation{
		p12Rel(policy.AttrAction, rsl.OpEq, policy.ActionStart),
		p12Rel("executable", rsl.OpEq, "app", exe),
		p12Rel("count", rsl.OpLe, "8"),
	}}
}

func p12SiteCap() *policy.Statement {
	return &policy.Statement{
		Subject: gsi.DN(P12OrgPrefix),
		Sets: []*policy.AssertionSet{{Clauses: []*rsl.Relation{
			p12Rel("queue", rsl.OpNeq, "fast"),
		}}},
	}
}

// P12User is the exact subject of per-user statement i.
func P12User(i int) gsi.DN {
	return gsi.DN(fmt.Sprintf("%s/CN=User %08d", P12OrgPrefix, i))
}

// ExactHeavyPolicy builds n statements: one group-wide requirement plus
// n-1 per-user grants, each under a distinct exact subject. Decisions
// for the users resolve through the exact-subject bucket.
func ExactHeavyPolicy(n int) *policy.Policy {
	stmts := make([]*policy.Statement, 0, n)
	stmts = append(stmts, p12SiteCap())
	for i := 1; i < n; i++ {
		stmts = append(stmts, &policy.Statement{
			Subject: P12User(i),
			Sets:    []*policy.AssertionSet{p12Grant(fmt.Sprintf("exe%07d", i))},
		})
	}
	return &policy.Policy{Source: "P12:exact", Statements: stmts}
}

// p12Site is the subject of prefix-heavy statement i: every eighth
// statement is a site, the rest are teams nested under the most recent
// site, so prefix resolution walks a real parent chain.
func p12Site(i int) gsi.DN {
	site := gsi.DN(fmt.Sprintf("%s/OU=Site %07d", P12OrgPrefix, i/8))
	if i%8 == 0 {
		return site
	}
	return site + gsi.DN(fmt.Sprintf("/OU=Team %d", i%8))
}

// PrefixHeavyPolicy builds n statements whose subjects are all group
// prefixes (sites and teams); no request identity ever equals a subject
// exactly, so every decision takes the sorted-prefix search path.
func PrefixHeavyPolicy(n int) *policy.Policy {
	stmts := make([]*policy.Statement, 0, n)
	stmts = append(stmts, p12SiteCap())
	for i := 1; i < n; i++ {
		stmts = append(stmts, &policy.Statement{
			Subject: p12Site(i),
			Sets:    []*policy.AssertionSet{p12Grant(fmt.Sprintf("svc%07d", i))},
		})
	}
	return &policy.Policy{Source: "P12:prefix", Statements: stmts}
}

// RequirementHeavyPolicy builds n per-user statements each carrying two
// requirement sets (one wildcard, one action-scoped) ahead of its
// grant, so every decision merges requirements before any grant can
// fire.
func RequirementHeavyPolicy(n int) *policy.Policy {
	stmts := make([]*policy.Statement, 0, n)
	stmts = append(stmts, p12SiteCap())
	for i := 1; i < n; i++ {
		stmts = append(stmts, &policy.Statement{
			Subject: P12User(i),
			Sets: []*policy.AssertionSet{
				{Clauses: []*rsl.Relation{
					p12Rel("maxtime", rsl.OpLe, "60"),
				}},
				{Clauses: []*rsl.Relation{
					p12Rel(policy.AttrAction, rsl.OpEq, policy.ActionStart),
					p12Rel("jobtag", rsl.OpNeq, policy.ValueNull),
				}},
				p12Grant(fmt.Sprintf("rexe%07d", i)),
			},
		})
	}
	return &policy.Policy{Source: "P12:req", Statements: stmts}
}

// P12Subject maps a synthetic identity index onto a request subject for
// a P12-shape policy of n statements (including the site cap). For the
// "exact" and "req" shapes the subject IS per-user statement
// 1+(i mod n-1), so distinct indices fold onto the policy's user set;
// for the "prefix" shape the subject is a member DN extended under
// group statement 1+(i mod n-1), so every index yields a DISTINCT
// identity and resolution must run the prefix search — this is what
// lets a load run drive a million distinct subjects through a
// ten-thousand-rule policy. The load harness (internal/loadgen) issues
// credentials for these DNs.
func P12Subject(shape string, i, n int) gsi.DN {
	k := 1 + i%(n-1)
	if shape == "prefix" {
		return p12Site(k) + gsi.DN(fmt.Sprintf("/CN=User %d", i))
	}
	return P12User(k)
}

// P12Spec is the shared job description every P12 request carries: it
// satisfies the grants ("app", count cap), the jobtag-required and
// maxtime requirements, and stays clear of the queue restriction.
func P12Spec() *rsl.Spec {
	return rsl.NewSpec().
		Set("executable", "app").
		Set("jobtag", "P12").
		Set("count", "2").
		Set("maxtime", "30")
}

// P12Requests returns m permit-path start requests spread uniformly
// over the n-1 per-user (or per-group) subjects of a P12 policy with n
// statements. All requests share one spec: evaluation never mutates it.
func P12Requests(pol *policy.Policy, m int) []policy.Request {
	spec := P12Spec()
	n := len(pol.Statements)
	reqs := make([]policy.Request, m)
	for i := range reqs {
		// Uniform spread over statements 1..n-1 (0 is the site cap).
		st := pol.Statements[1+i*(n-1)/m]
		subject := st.Subject
		if pol.Source == "P12:prefix" {
			// Group subjects: extend with a member CN so resolution
			// must run the prefix search, never the exact bucket.
			subject += gsi.DN(fmt.Sprintf("/CN=User %d", i))
		}
		reqs[i] = policy.Request{
			Subject: subject,
			Action:  policy.ActionStart,
			Spec:    spec,
		}
	}
	return reqs
}

// SyntheticRSL builds a job description with nAttrs attributes, for the
// P3 parse-throughput sweep.
func SyntheticRSL(nAttrs int) string {
	var sb strings.Builder
	sb.WriteString("&(executable=/bin/app)")
	for i := 1; i < nAttrs; i++ {
		fmt.Fprintf(&sb, "(attr%03d=value-%d)", i, i)
	}
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
