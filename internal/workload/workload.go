// Package workload generates the synthetic users, policies, job
// descriptions and request streams that drive the examples, experiments
// and benchmarks. Every generator is seeded and deterministic.
//
// Two families are provided: the National Fusion Collaboratory scenario
// from §2 of the paper (developer and analysis groups, sanctioned
// application services, admin preemption) and parameterized synthetic
// sweeps for the scaling benchmarks (P1-P4 in DESIGN.md).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"gridauth/internal/gsi"
	"gridauth/internal/policy"
	"gridauth/internal/rsl"
)

// NFC scenario constants.
const (
	// OrgPrefix is the DN prefix shared by all NFC members.
	OrgPrefix = "/O=Grid/O=Globus/OU=mcs.anl.gov"
	// ServiceDir is where sanctioned services live.
	ServiceDir = "/sandbox/services"
)

// User is a generated grid user.
type User struct {
	DN   gsi.DN
	Role string // "developer", "analyst" or "admin"
}

// NFCUsers generates nDev developers, nAna analysts and nAdm admins with
// deterministic DNs.
func NFCUsers(nDev, nAna, nAdm int) []User {
	users := make([]User, 0, nDev+nAna+nAdm)
	for i := 0; i < nDev; i++ {
		users = append(users, User{
			DN:   gsi.DN(fmt.Sprintf("%s/CN=Developer %03d", OrgPrefix, i)),
			Role: "developer",
		})
	}
	for i := 0; i < nAna; i++ {
		users = append(users, User{
			DN:   gsi.DN(fmt.Sprintf("%s/CN=Analyst %03d", OrgPrefix, i)),
			Role: "analyst",
		})
	}
	for i := 0; i < nAdm; i++ {
		users = append(users, User{
			DN:   gsi.DN(fmt.Sprintf("%s/CN=Admin %03d", OrgPrefix, i)),
			Role: "admin",
		})
	}
	return users
}

// NFCPolicy renders the scenario policy for the given users: the VO-wide
// jobtag requirement, developer limits, analyst service grants,
// admin management rights over the NFC and ADS jobtag groups, and
// self-management for everyone.
func NFCPolicy(users []User) (*policy.Policy, error) {
	var sb strings.Builder
	sb.WriteString(OrgPrefix + ": &(action = start)(jobtag != NULL)\n")
	for _, u := range users {
		var sets []string
		switch u.Role {
		case "developer":
			sets = append(sets,
				"&(action = start)(executable = gcc gdb make test1 test2)(jobtag = ADS)(count<=2)(maxtime<=30)")
		case "analyst":
			sets = append(sets,
				fmt.Sprintf("&(action = start)(executable = TRANSP EFIT)(directory = %s)(jobtag = NFC)", ServiceDir))
		case "admin":
			sets = append(sets,
				fmt.Sprintf("&(action = start)(executable = TRANSP EFIT)(directory = %s)(jobtag = NFC)", ServiceDir),
				"&(action = cancel information signal)(jobtag = NFC ADS)")
		}
		sets = append(sets, "&(action = cancel information signal)(jobowner = self)")
		fmt.Fprintf(&sb, "%s: %s\n", u.DN, strings.Join(sets, " "))
	}
	return policy.ParseString(sb.String(), "VO:NFC")
}

// NFCLocalPolicy is the resource owner's policy in the scenario: no
// reserved queue, every request must name an executable, and a site-wide
// processor ceiling.
func NFCLocalPolicy() (*policy.Policy, error) {
	const text = `
/O=Grid: &(action = start)(queue != fast)
/O=Grid: &(action = start)(executable != NULL)(count<=64)
/O=Grid: &(action = cancel information signal)(executable != NULL)
`
	return policy.ParseString(text, "local")
}

// JobFor generates a role-appropriate job description. conforming=false
// produces a request that violates the role's policy in a random way.
func JobFor(u User, rng *rand.Rand, conforming bool) *rsl.Spec {
	spec := rsl.NewSpec()
	switch u.Role {
	case "developer":
		exes := []string{"gcc", "gdb", "make", "test1", "test2"}
		spec.Set("executable", exes[rng.Intn(len(exes))])
		spec.Set("jobtag", "ADS")
		spec.Set("count", itoa(1+rng.Intn(2)))
		spec.Set("maxtime", itoa(5+rng.Intn(25)))
	default: // analyst, admin
		exes := []string{"TRANSP", "EFIT"}
		spec.Set("executable", exes[rng.Intn(len(exes))])
		spec.Set("directory", ServiceDir)
		spec.Set("jobtag", "NFC")
		spec.Set("count", itoa(1+rng.Intn(32)))
	}
	if !conforming {
		switch rng.Intn(4) {
		case 0:
			spec.Set("executable", "arbitrary-binary")
		case 1:
			spec.Delete("jobtag")
		case 2:
			spec.Set("count", "999")
		case 3:
			spec.Set("queue", "fast")
		}
	}
	return spec
}

// Request is a generated authorization request with its expected policy
// subject.
type Request struct {
	Subject gsi.DN
	Action  string
	Spec    *rsl.Spec
	Owner   gsi.DN
}

// RequestStream generates n policy requests: a mix of starts (80%) and
// management actions (20%), with conformFraction of the starts
// policy-conforming.
func RequestStream(users []User, n int, seed int64, conformFraction float64) []Request {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		u := users[rng.Intn(len(users))]
		if rng.Float64() < 0.8 {
			conforming := rng.Float64() < conformFraction
			out = append(out, Request{
				Subject: u.DN,
				Action:  policy.ActionStart,
				Spec:    JobFor(u, rng, conforming),
			})
			continue
		}
		owner := users[rng.Intn(len(users))]
		actions := []string{policy.ActionCancel, policy.ActionInformation, policy.ActionSignal}
		out = append(out, Request{
			Subject: u.DN,
			Action:  actions[rng.Intn(len(actions))],
			Spec:    JobFor(owner, rng, true),
			Owner:   owner.DN,
		})
	}
	return out
}

// SyntheticPolicy builds a policy with nStatements statements, each
// holding setsPerStatement grant sets of clausesPerSet clauses, spread
// over the given users round-robin. It drives the P2 scaling sweeps.
func SyntheticPolicy(users []User, nStatements, setsPerStatement, clausesPerSet int) (*policy.Policy, error) {
	var sb strings.Builder
	for i := 0; i < nStatements; i++ {
		u := users[i%len(users)]
		var sets []string
		for s := 0; s < setsPerStatement; s++ {
			var clauses []string
			clauses = append(clauses, "(action = start)")
			clauses = append(clauses, fmt.Sprintf("(executable = exe%d-%d)", i, s))
			for c := 2; c < clausesPerSet; c++ {
				clauses = append(clauses, fmt.Sprintf("(attr%d = v%d)", c, c))
			}
			sets = append(sets, "&"+strings.Join(clauses, ""))
		}
		fmt.Fprintf(&sb, "%s: %s\n", u.DN, strings.Join(sets, " "))
	}
	return policy.ParseString(sb.String(), "synthetic")
}

// SyntheticRSL builds a job description with nAttrs attributes, for the
// P3 parse-throughput sweep.
func SyntheticRSL(nAttrs int) string {
	var sb strings.Builder
	sb.WriteString("&(executable=/bin/app)")
	for i := 1; i < nAttrs; i++ {
		fmt.Fprintf(&sb, "(attr%03d=value-%d)", i, i)
	}
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
