package workload

import (
	"math/rand"
	"testing"

	"gridauth/internal/policy"
)

func TestNFCUsers(t *testing.T) {
	users := NFCUsers(2, 3, 1)
	if len(users) != 6 {
		t.Fatalf("users = %d", len(users))
	}
	roles := map[string]int{}
	for _, u := range users {
		roles[u.Role]++
		if !u.DN.HasPrefix(OrgPrefix) {
			t.Errorf("DN %s outside org prefix", u.DN)
		}
	}
	if roles["developer"] != 2 || roles["analyst"] != 3 || roles["admin"] != 1 {
		t.Errorf("roles = %v", roles)
	}
	// Deterministic.
	again := NFCUsers(2, 3, 1)
	for i := range users {
		if users[i] != again[i] {
			t.Errorf("NFCUsers not deterministic at %d", i)
		}
	}
}

func TestNFCPolicyDecisions(t *testing.T) {
	users := NFCUsers(1, 1, 1)
	pol, err := NFCPolicy(users)
	if err != nil {
		t.Fatal(err)
	}
	dev, ana, adm := users[0], users[1], users[2]
	rng := rand.New(rand.NewSource(1))

	devJob := JobFor(dev, rng, true)
	if !pol.Evaluate(&policy.Request{Subject: dev.DN, Action: policy.ActionStart, Spec: devJob}).Allowed {
		t.Errorf("conforming developer job denied")
	}
	anaJob := JobFor(ana, rng, true)
	if !pol.Evaluate(&policy.Request{Subject: ana.DN, Action: policy.ActionStart, Spec: anaJob}).Allowed {
		t.Errorf("conforming analyst job denied")
	}
	// Role crossing is denied: a developer cannot start analyst services.
	if pol.Evaluate(&policy.Request{Subject: dev.DN, Action: policy.ActionStart, Spec: anaJob}).Allowed {
		t.Errorf("developer ran analyst job")
	}
	// Admin manages others' NFC jobs.
	d := pol.Evaluate(&policy.Request{Subject: adm.DN, Action: policy.ActionCancel, JobOwner: ana.DN, Spec: anaJob})
	if !d.Allowed {
		t.Errorf("admin cancel denied: %s", d.Reason)
	}
	// Analyst cannot manage the developer's job.
	if pol.Evaluate(&policy.Request{Subject: ana.DN, Action: policy.ActionCancel, JobOwner: dev.DN, Spec: devJob}).Allowed {
		t.Errorf("analyst managed another's job")
	}
}

func TestJobForNonConformingViolates(t *testing.T) {
	users := NFCUsers(4, 4, 0)
	pol, err := NFCPolicy(users)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NFCLocalPolicy()
	if err != nil {
		t.Fatal(err)
	}
	merged := pol.Merge(local)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		u := users[rng.Intn(len(users))]
		spec := JobFor(u, rng, false)
		d := merged.Evaluate(&policy.Request{Subject: u.DN, Action: policy.ActionStart, Spec: spec})
		if d.Allowed {
			t.Fatalf("non-conforming job allowed for %s: %s", u.DN, spec)
		}
	}
	// And conforming jobs pass both policies.
	for i := 0; i < 200; i++ {
		u := users[rng.Intn(len(users))]
		spec := JobFor(u, rng, true)
		d := merged.Evaluate(&policy.Request{Subject: u.DN, Action: policy.ActionStart, Spec: spec})
		if !d.Allowed {
			t.Fatalf("conforming job denied for %s: %s (%s)", u.DN, spec, d.Reason)
		}
	}
}

func TestRequestStreamDeterministic(t *testing.T) {
	users := NFCUsers(2, 2, 1)
	a := RequestStream(users, 100, 7, 0.9)
	b := RequestStream(users, 100, 7, 0.9)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Subject != b[i].Subject || a[i].Action != b[i].Action || !a[i].Spec.Equal(b[i].Spec) {
			t.Fatalf("stream not deterministic at %d", i)
		}
	}
	starts := 0
	for _, r := range a {
		if r.Action == policy.ActionStart {
			starts++
		}
	}
	if starts < 60 || starts > 95 {
		t.Errorf("start fraction out of band: %d/100", starts)
	}
}

func TestSyntheticPolicyShape(t *testing.T) {
	users := NFCUsers(0, 10, 0)
	pol, err := SyntheticPolicy(users, 50, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Statements) != 50 {
		t.Fatalf("statements = %d", len(pol.Statements))
	}
	for _, st := range pol.Statements {
		if len(st.Sets) != 3 {
			t.Fatalf("sets = %d", len(st.Sets))
		}
		for _, set := range st.Sets {
			if len(set.Clauses) != 5 {
				t.Fatalf("clauses = %d", len(set.Clauses))
			}
		}
	}
	// A request matching statement 0's first grant evaluates to permit.
	spec := JobFor(users[0], rand.New(rand.NewSource(1)), true)
	spec.Set("executable", "exe0-0")
	spec.Set("attr2", "v2")
	spec.Set("attr3", "v3")
	spec.Set("attr4", "v4")
	d := pol.Evaluate(&policy.Request{Subject: users[0].DN, Action: policy.ActionStart, Spec: spec})
	if !d.Allowed {
		t.Errorf("synthetic grant did not fire: %s", d.Reason)
	}
}

func TestSyntheticRSLParses(t *testing.T) {
	for _, n := range []int{1, 5, 50, 200} {
		text := SyntheticRSL(n)
		spec, err := parseSpec(text)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if spec.Len() != n {
			t.Errorf("n=%d: attrs = %d", n, spec.Len())
		}
	}
}

// Every P12 shape must (a) evaluate identically compiled and
// interpreted, (b) permit on each generated request — the sweep times
// the permit path, a silent deny would benchmark the wrong code — and
// (c) resolve through the intended subject machinery (exact bucket vs
// prefix search).
func TestP12Shapes(t *testing.T) {
	shapes := []struct {
		name string
		gen  func(int) *policy.Policy
	}{
		{"exact", ExactHeavyPolicy},
		{"prefix", PrefixHeavyPolicy},
		{"req", RequirementHeavyPolicy},
	}
	for _, sh := range shapes {
		pol := sh.gen(64)
		if got := len(pol.Statements); got != 64 {
			t.Fatalf("%s: statements = %d, want 64", sh.name, got)
		}
		c := policy.Compile(pol)
		for i, r := range P12Requests(pol, 96) {
			req := &r
			lin, com := pol.Evaluate(req), c.Evaluate(req)
			if lin != com {
				t.Fatalf("%s request %d: interpreted %+v != compiled %+v", sh.name, i, lin, com)
			}
			if !com.Allowed {
				t.Errorf("%s request %d (%s): not permitted: %s", sh.name, i, r.Subject, com.Reason)
			}
		}
	}
	// Round-tripping through the text form proves the struct builders
	// produce what policy.Parse would.
	for _, sh := range shapes {
		pol := sh.gen(8)
		reparsed, err := policy.ParseString(pol.Unparse(), pol.Source)
		if err != nil {
			t.Fatalf("%s: reparse: %v", sh.name, err)
		}
		c := policy.Compile(reparsed)
		for i, r := range P12Requests(pol, 7) {
			req := &r
			if lin, com := pol.Evaluate(req), c.Evaluate(req); lin != com {
				t.Fatalf("%s request %d: struct-built %+v != reparsed %+v", sh.name, i, lin, com)
			}
		}
	}
}
