package gridauth_test

// TestLoadSmoke is the tier-1 slice of the P13 full-stack load harness
// (docs/PERFORMANCE.md): a small closed-loop run — a thousand synthetic
// identities, a mixed traffic and connection-mode profile — against a
// real gatekeeper, gridftp server and MDS directory. It is -short
// friendly and bounded to roughly two seconds of traffic, so it rides
// in `go test ./...`; `make load-smoke` runs it alone. The full
// experiment grid lives in scripts/experiments.
//
// It asserts the harness invariants the committed BENCH_load.json
// relies on: no transport errors, no denials on the permit-path
// profile, and client-side decision counts agreeing with the scraped
// /metrics counters within 1%.

import (
	"testing"

	"gridauth/internal/loadgen"
)

func TestLoadSmoke(t *testing.T) {
	p := loadgen.Point{
		Name:       "smoke",
		Identities: 1000,
		Workers:    4,
		Requests:   600,
		Dist:       loadgen.DistZipf,
		Policy:     loadgen.PolicyShape{Shape: loadgen.ShapeExact, Rules: 1000},
		Mix:        loadgen.Mix{Startup: 4, Management: 3, GridFTP: 2, MDS: 1},
		Conn:       loadgen.ConnMix{Reuse: 6, Resume: 2, Full: 2},
	}
	res, err := loadgen.RunPoint(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("smoke: %d ops in %.2fs (%.0f ops/s), p50=%.0fµs p99=%.0fµs p999=%.0fµs, peak=%.0f dec/s, full=%d resumed=%d, %d identities",
		res.Requests, res.DurationSec, res.Throughput,
		res.P50Micros, res.P99Micros, res.P999Micros, res.PeakDecisionsPerSec,
		res.HandshakesFull, res.HandshakesResumed, res.Identities)
	if res.Errors != 0 {
		t.Fatalf("load smoke saw %d transport errors", res.Errors)
	}
	if res.Denies != 0 {
		t.Fatalf("permit-path profile saw %d denials", res.Denies)
	}
	if res.Permits != uint64(p.Requests) {
		t.Fatalf("permits = %d, want %d", res.Permits, p.Requests)
	}
	if res.CrossCheckPct > 1.0 {
		t.Fatalf("client/server decision cross-check off by %.2f%% (client %d, server %d)",
			res.CrossCheckPct, res.Permits+res.Denies, res.ServerDecisions)
	}
	if res.Identities == 0 || res.Identities > 1000 {
		t.Fatalf("materialized %d identities", res.Identities)
	}
	if res.HandshakesFull == 0 {
		t.Fatal("no full handshakes recorded")
	}
	if res.HandshakesResumed == 0 {
		t.Fatal("no resumed handshakes recorded: the resume mix did not exercise session tickets")
	}
	if res.P50Micros <= 0 || res.P99Micros < res.P50Micros || res.P999Micros < res.P99Micros {
		t.Fatalf("implausible percentiles: p50=%.0f p99=%.0f p999=%.0f",
			res.P50Micros, res.P99Micros, res.P999Micros)
	}
}
