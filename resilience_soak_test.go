package gridauth

// Chaos soak: drives concurrent startup and management traffic through
// a live TCP resource whose callout chain contains a fault-injected PDP
// (internal/faultinject), with the full resilience stack enabled
// (internal/resilience: per-PDP timeout, retries, circuit breaker) and
// parallel chain evaluation. It asserts the degraded-mode contract end
// to end:
//
//   - job STARTUP under authorization-system failure stays fail-closed:
//     every submit is refused with the hard CodeAuthorizationFailure,
//     never the retryable code, and never admitted;
//   - job MANAGEMENT surfaces the retryable
//     CodeAuthorizationUnavailable, and a client that backs off and
//     retries succeeds once the backend heals and the breaker recovers
//     through half-open;
//   - breaker transitions (open, half-open, closed) are audited;
//   - no VO allocation is leaked by refused or abandoned requests.
//
// Run under -race in CI; every failure mode here is a concurrency bug
// by construction.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gridauth/internal/allocation"
	"gridauth/internal/audit"
	"gridauth/internal/core"
	"gridauth/internal/faultinject"
	"gridauth/internal/gram"
	"gridauth/internal/gsi"
	"gridauth/internal/resilience"
)

func TestChaosSoak(t *testing.T) {
	fab, err := NewFabric("/O=Grid/CN=Chaos CA")
	if err != nil {
		t.Fatal(err)
	}
	kate, err := fab.IssueUser("/O=Grid/CN=Kate")
	if err != nil {
		t.Fatal(err)
	}

	tracker := allocation.NewTracker()
	tracker.SetGrant(allocation.Grant{VO: "NFC", CPUSeconds: 1e6})
	tracker.Enroll(kate.Identity(), "NFC")

	// The chaos PDP stands in for a remote Akenti/CAS callout: it
	// abstains when healthy (the VO policy PDP is the granting source)
	// and injects errors and hangs when broken.
	steady := core.PDPFunc{ID: "steady", Fn: func(*core.Request) core.Decision {
		return core.AbstainDecision("steady", "remote source has no opinion")
	}}
	chaos := faultinject.NewChaosPDP(steady, 7, faultinject.PDPConfig{})

	log := audit.NewLog(256)
	res, err := fab.StartResource(ResourceConfig{
		Name:    "chaos.anl.gov",
		Mode:    ModeCallout,
		GridMap: map[gsi.DN][]string{kate.Identity(): {"keahey"}},
		VOPolicy: `/O=Grid/CN=Kate: &(action = start)(executable = TRANSP)(maxtime != NULL) ` +
			`&(action = cancel information signal)(jobowner = self)`,
		ExtraPDPs:         []core.PDP{chaos},
		Allocation:        tracker,
		ParallelAuthz:     true,
		PDPTimeout:        250 * time.Millisecond,
		AuthzRetries:      1,
		AuthzRetryBackoff: 5 * time.Millisecond,
		CircuitBreaker:    true,
		BreakerThreshold:  3,
		BreakerCooldown:   300 * time.Millisecond,
		AuditLog:          log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	newClient := func() *gram.Client {
		c, err := res.Client(kate)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}

	// Healthy phase: one job goes in and is manageable; it is the target
	// of all management traffic below.
	healthy := newClient()
	contact, err := healthy.Submit(`&(executable=TRANSP)(count=1)(maxtime=30)(simduration=600)`, "")
	if err != nil {
		t.Fatalf("healthy submit: %v", err)
	}
	if _, err := healthy.Status(contact); err != nil {
		t.Fatalf("healthy status: %v", err)
	}

	// Fault phase: the remote source fails every call — one in five
	// hangs (cleared only by the PDP timeout), the rest error fast.
	// The rolls are independent, so ErrorRate must be 1 for a total
	// outage: anything that does not hang, errors.
	chaos.SetConfig(faultinject.PDPConfig{ErrorRate: 1, HangRate: 0.2})

	const workers, iters = 4, 5
	var wg sync.WaitGroup
	errCh := make(chan error, 2*workers*iters+2)
	for w := 0; w < workers; w++ {
		// Startup traffic: every submit must be refused with the HARD
		// failure code — fail-closed means no admission and no "try
		// again" invitation for something that was never created.
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newClient()
			c.SetRetryPolicy(resilience.Policy{Attempts: 1})
			for i := 0; i < iters; i++ {
				_, err := c.Submit(`&(executable=TRANSP)(count=1)(maxtime=30)`, "")
				switch {
				case err == nil:
					errCh <- fmt.Errorf("submit %d/%d admitted a job during total authorization failure", w, i)
				case gram.IsAuthorizationUnavailable(err):
					errCh <- fmt.Errorf("submit %d/%d got the retryable code, want hard failure: %v", w, i, err)
				case !gram.IsAuthorizationFailure(err):
					errCh <- fmt.Errorf("submit %d/%d = %v, want authorization system failure", w, i, err)
				}
			}
		}(w)
		// Management traffic: same outage, opposite contract — the job
		// exists, so the failure must be the RETRYABLE code.
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newClient()
			c.SetRetryPolicy(resilience.Policy{Attempts: 1})
			for i := 0; i < iters; i++ {
				_, err := c.Status(contact)
				switch {
				case err == nil:
					errCh <- fmt.Errorf("status %d/%d succeeded during total authorization failure", w, i)
				case !gram.IsAuthorizationUnavailable(err):
					errCh <- fmt.Errorf("status %d/%d = %v, want retryable authorization-unavailable", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Heal phase: the backend recovers, but the breaker is open. A
	// client that backs off and retries — the documented reaction to
	// CodeAuthorizationUnavailable — rides through the cooldown and the
	// half-open probe and gets its answer.
	chaos.SetConfig(faultinject.PDPConfig{})
	patient := newClient()
	patient.SetRetryPolicy(resilience.Policy{
		Attempts:  20,
		BaseDelay: 50 * time.Millisecond,
		MaxDelay:  100 * time.Millisecond,
	})
	st, err := patient.Status(contact)
	if err != nil {
		t.Fatalf("status after heal never recovered: %v", err)
	}
	if st.Owner != kate.Identity() {
		t.Errorf("recovered status owner = %s", st.Owner)
	}
	// Startup recovers too (the breaker closed on the management probe).
	if _, err := patient.Submit(`&(executable=TRANSP)(count=1)(maxtime=30)(simduration=60)`, ""); err != nil {
		t.Fatalf("submit after heal: %v", err)
	}

	// The breaker's life cycle was audited: it opened under the fault,
	// probed half-open after the cooldown, and closed on recovery.
	transitions := map[string]int{}
	for _, r := range log.Filter(func(r audit.Record) bool { return r.Action == "circuit-breaker" }) {
		if r.PDP != chaos.Name() {
			t.Errorf("breaker transition attributed to %q, want %q", r.PDP, chaos.Name())
		}
		transitions[r.Effect]++
	}
	for _, want := range []string{"open", "half-open", "closed"} {
		if transitions[want] == 0 {
			t.Errorf("no audited %q transition (got %v)", want, transitions)
		}
	}

	// No allocation leak: every refused startup reserved nothing, every
	// admitted job's reservation is committed when it finishes.
	res.Cluster.Advance(11 * time.Minute)
	u, err := tracker.UsageOf("NFC")
	if err != nil {
		t.Fatal(err)
	}
	if u.Reserved != 0 {
		t.Fatalf("allocation leak: %+v (refused/abandoned requests must not hold reservations)", u)
	}
	if u.Used == 0 {
		t.Error("admitted jobs committed no usage")
	}

	// The injected faults actually happened — the soak exercised what it
	// claims to.
	if calls, errs, hangs := chaos.Stats(); errs == 0 || hangs == 0 {
		t.Errorf("chaos stats calls=%d errors=%d hangs=%d: fault phase did not inject both classes", calls, errs, hangs)
	}
}
