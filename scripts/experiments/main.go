// Command experiments runs the committed P13 experiment grid
// (grid.json next to this file) through the full-stack load harness
// (internal/loadgen) and writes the machine-readable report to
// BENCH_load.json at the repository root — the baseline cmd/benchdiff
// compares CI runs against. The human-readable table goes to stdout,
// per-run progress to stderr.
//
//	go run ./scripts/experiments
//	go run ./scripts/experiments -grid my-grid.json -out /tmp/bench.json
//
// See docs/PERFORMANCE.md ("P13 — full-stack load") for the grid
// schema and the runbook.
package main

import (
	"flag"
	"fmt"
	"os"

	"gridauth/internal/loadgen"
)

func main() {
	grid := flag.String("grid", "scripts/experiments/grid.json", "experiment grid file")
	out := flag.String("out", "BENCH_load.json", "machine-readable report path")
	flag.Parse()

	g, err := loadgen.LoadGrid(*grid)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	rep, err := loadgen.RunGrid(g, func(line string) { fmt.Fprintln(os.Stderr, line) })
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	fmt.Print(rep.Table())
	if err := rep.WriteJSON(*out); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	for _, p := range rep.Points {
		if p.Errors > 0 {
			fmt.Fprintf(os.Stderr, "experiments: point %s recorded %d transport errors\n", p.Point, p.Errors)
			os.Exit(1)
		}
		if p.CrossCheckPct > 1.0 {
			fmt.Fprintf(os.Stderr, "experiments: point %s client/server decision counts disagree by %.2f%%\n", p.Point, p.CrossCheckPct)
			os.Exit(1)
		}
	}
}
